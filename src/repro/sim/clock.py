"""Simulated clock.

The clock is the single source of truth for simulated time.  All times are
integer nanoseconds (see :mod:`repro.units`).  Two advancement modes exist:

* :meth:`SimClock.advance` - move forward by a duration (driver work,
  DMA transfers, stalls).
* :meth:`SimClock.advance_to` - jump to an absolute time (event delivery).

The clock never moves backwards; attempting to do so raises
:class:`~repro.errors.SimulationError`, which catches lost-ordering bugs
in policy code early.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.units import ns_to_us


class SimClock:
    """Monotonic simulated clock with nanosecond resolution."""

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise SimulationError(f"clock cannot start at negative time {start_ns}")
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds (reporting convenience)."""
        return ns_to_us(self._now)

    def advance(self, duration_ns: int) -> int:
        """Advance the clock by ``duration_ns`` and return the new time.

        Durations are rounded to whole nanoseconds; negative durations are
        rejected.
        """
        duration_ns = round(duration_ns)
        if duration_ns < 0:
            raise SimulationError(f"cannot advance clock by negative {duration_ns}ns")
        self._now += duration_ns
        return self._now

    def advance_to(self, time_ns: int) -> int:
        """Jump the clock forward to absolute ``time_ns``.

        Jumping to the current time is a no-op; jumping backwards raises.
        """
        time_ns = round(time_ns)
        if time_ns < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}ns target={time_ns}ns"
            )
        self._now = time_ns
        return self._now

    def reset(self) -> None:
        """Reset simulated time to zero (for reusing a harness)."""
        self._now = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now}ns)"
