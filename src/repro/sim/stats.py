"""Hierarchical timing and counter accumulators.

The paper's core methodology is *instrumenting the driver* and attributing
time to categories: pre/post-processing, fault servicing (with
sub-categories Map Pages, Migrate Pages, PMA Alloc Pages), and replay
policy (Figs. 3-5, 9).  :class:`CategoryTimer` reproduces that
instrumentation: driver code brackets work with ``timer.charge(path, ns)``
and analysis code reads hierarchical breakdowns back out.

Category paths are dotted strings, e.g. ``"service.migrate"``; charging a
leaf automatically aggregates into every ancestor when summarized.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import TraceError
from repro.units import ns_to_us


class CategoryTimer:
    """Accumulates simulated nanoseconds into dotted category paths."""

    def __init__(self) -> None:
        self._ns: dict[str, int] = defaultdict(int)
        self._counts: dict[str, int] = defaultdict(int)

    def charge(self, path: str, duration_ns: int, count: int = 1) -> int:
        """Attribute ``duration_ns`` to ``path``; returns the duration.

        ``count`` records how many operations the charge covers (e.g. one
        ``charge("service.map", t, count=n_pages)``).
        """
        if not path:
            raise TraceError("category path must be non-empty")
        duration_ns = round(duration_ns)
        if duration_ns < 0:
            raise TraceError(f"negative charge {duration_ns}ns to {path!r}")
        self._ns[path] += duration_ns
        self._counts[path] += count
        return duration_ns

    def leaf_ns(self, path: str) -> int:
        """Nanoseconds charged directly to ``path`` (no descendants)."""
        return self._ns.get(path, 0)

    def total_ns(self, prefix: str = "") -> int:
        """Nanoseconds charged to ``prefix`` and all its descendants."""
        if not prefix:
            return sum(self._ns.values())
        dot = prefix + "."
        return sum(v for k, v in self._ns.items() if k == prefix or k.startswith(dot))

    def count(self, prefix: str = "") -> int:
        """Operation count for ``prefix`` and descendants."""
        if not prefix:
            return sum(self._counts.values())
        dot = prefix + "."
        return sum(v for k, v in self._counts.items() if k == prefix or k.startswith(dot))

    def paths(self) -> list[str]:
        """All leaf paths that received charges, sorted."""
        return sorted(self._ns)

    def as_dict(self) -> dict[str, int]:
        """Copy of the raw leaf charges."""
        return dict(self._ns)

    def merge(self, other: "CategoryTimer") -> None:
        """Fold another timer's charges into this one."""
        for k, v in other._ns.items():
            self._ns[k] += v
        for k, v in other._counts.items():
            self._counts[k] += v

    def breakdown(self, roots: tuple[str, ...]) -> "TimeBreakdown":
        """Summarize into the paper's top-level categories."""
        rows = {root: self.total_ns(root) for root in roots}
        other = self.total_ns() - sum(rows.values())
        return TimeBreakdown(rows=rows, other_ns=max(other, 0))


#: The paper's top-level driver categories (Fig. 3).
PAPER_CATEGORIES: tuple[str, ...] = ("preprocess", "service", "replay_policy")

#: The paper's service sub-categories (Fig. 4).
SERVICE_SUBCATEGORIES: tuple[str, ...] = (
    "service.pma_alloc",
    "service.migrate",
    "service.map",
)


@dataclass
class TimeBreakdown:
    """A rendered breakdown: category -> simulated ns, plus a remainder."""

    rows: dict[str, int]
    other_ns: int = 0

    @property
    def total_ns(self) -> int:
        return sum(self.rows.values()) + self.other_ns

    def fraction(self, category: str) -> float:
        """Share of the total attributed to ``category`` (0 when empty)."""
        total = self.total_ns
        if total == 0:
            return 0.0
        return self.rows.get(category, 0) / total

    def render(self, title: str = "driver time breakdown") -> str:
        """ASCII table in microseconds, mirroring the paper's stacked bars."""
        lines = [title]
        width = max([len(k) for k in self.rows] + [len("other"), len("total")])
        for name, t_ns in sorted(self.rows.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  {name:<{width}}  {ns_to_us(t_ns):>12.1f} us  ({self.fraction(name) * 100:5.1f}%)"
            )
        if self.other_ns:
            lines.append(
                f"  {'other':<{width}}  {ns_to_us(self.other_ns):>12.1f} us"
            )
        lines.append(f"  {'total':<{width}}  {ns_to_us(self.total_ns):>12.1f} us")
        return "\n".join(lines)


def percentile(sorted_values: "list[float]", q: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sample.

    ``q`` is in percent (``50`` = median).  Empty input returns 0.0 so
    metric endpoints never have to special-case a cold service.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise TraceError(f"percentile q={q} outside 0..100")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return float(sorted_values[lo]) * (1.0 - frac) + float(sorted_values[hi]) * frac


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a latency sample (nanoseconds).

    The service's ``/metrics`` endpoint reports job latency through this
    summary; it lives here next to the other accumulators so offline
    analysis and the service share one definition of p50/p95.
    """

    n: int
    mean_ns: float
    p50_ns: float
    p95_ns: float
    max_ns: float

    @classmethod
    def from_samples(cls, samples: "Iterable[float]") -> "LatencyStats":
        values = sorted(float(v) for v in samples)
        if not values:
            return cls(n=0, mean_ns=0.0, p50_ns=0.0, p95_ns=0.0, max_ns=0.0)
        return cls(
            n=len(values),
            mean_ns=sum(values) / len(values),
            p50_ns=percentile(values, 50),
            p95_ns=percentile(values, 95),
            max_ns=values[-1],
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-safe view in microseconds (the repo's display unit)."""
        return {
            "n": self.n,
            "mean_us": ns_to_us(self.mean_ns),
            "p50_us": ns_to_us(self.p50_ns),
            "p95_us": ns_to_us(self.p95_ns),
            "max_us": ns_to_us(self.max_ns),
        }


class CounterSet:
    """Named integer counters (faults, pages migrated, evictions, ...)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def add(self, name: str, value: int = 1) -> int:
        if not name:
            raise TraceError("counter name must be non-empty")
        self._counts[name] += int(value)
        return self._counts[name]

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "CounterSet") -> None:
        for k, v in other._counts.items():
            self._counts[k] += v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"CounterSet({inner})"
