"""Minimal discrete-event engine.

The UVM simulation is largely a synchronous driver loop (mirroring the real
driver's interrupt-service structure), but a few mechanisms are naturally
asynchronous and are modelled as scheduled events:

* delivery of replay notifications to the GPU after the driver issues them
  (the replay has in-fabric latency before stalled warps observe it),
* DMA completion callbacks when transfers are pipelined,
* periodic access-counter dumps for the Volta access-counter extension.

The engine is a classic binary-heap scheduler.  Ties in time are broken by
insertion order so the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import SimClock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time_ns, seq)``; the payload and callback do not
    participate in ordering.  ``cancelled`` events stay in the heap but are
    skipped on dispatch (lazy deletion); the owning queue keeps a live
    counter so ``len(queue)`` never scans the heap.
    """

    time_ns: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark this event so it will be skipped when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            if self.queue is not None:
                self.queue._live -= 1


class EventQueue:
    """Deterministic event queue bound to a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0
        self.dispatched = 0

    def __len__(self) -> int:
        return self._live

    def schedule_at(self, time_ns: int, callback: Callable[..., None], payload: Any = None) -> Event:
        """Schedule ``callback(payload)`` at absolute simulated ``time_ns``."""
        time_ns = round(time_ns)
        if time_ns < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.clock.now} t={time_ns}"
            )
        ev = Event(
            time_ns=time_ns,
            seq=next(self._seq),
            callback=callback,
            payload=payload,
            queue=self,
        )
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def schedule_in(self, delay_ns: int, callback: Callable[..., None], payload: Any = None) -> Event:
        """Schedule ``callback(payload)`` after a relative ``delay_ns``."""
        if delay_ns < 0:
            raise SimulationError(f"negative event delay {delay_ns}")
        return self.schedule_at(self.clock.now + round(delay_ns), callback, payload)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ns if self._heap else None

    def run_next(self) -> bool:
        """Dispatch the next live event, advancing the clock to its time.

        Returns ``False`` when no live events remain.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            ev.queue = None  # detach: a late cancel() must not recount
            self.clock.advance_to(ev.time_ns)
            self.dispatched += 1
            ev.callback(ev.payload)
            return True
        return False

    def run_until(self, time_ns: int) -> int:
        """Dispatch all events with time <= ``time_ns``; return the count.

        The clock ends at ``time_ns`` even if the last event fired earlier,
        matching "simulate this long" semantics.
        """
        fired = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > time_ns:
                break
            self.run_next()
            fired += 1
        self.clock.advance_to(max(self.clock.now, round(time_ns)))
        return fired

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Dispatch events until the queue drains; guard against runaways."""
        fired = 0
        while self.run_next():
            fired += 1
            if fired > max_events:
                raise SimulationError(f"event runaway: dispatched over {max_events} events")
        return fired
