"""Minimal discrete-event engine.

The UVM simulation is largely a synchronous driver loop (mirroring the real
driver's interrupt-service structure), but a few mechanisms are naturally
asynchronous and are modelled as scheduled events:

* delivery of replay notifications to the GPU after the driver issues them
  (the replay has in-fabric latency before stalled warps observe it),
* DMA completion callbacks when transfers are pipelined,
* periodic access-counter dumps for the Volta access-counter extension.

The engine is a classic binary-heap scheduler.  Ties in time are broken by
insertion order so the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import CheckpointError, SimulationError
from repro.sim.clock import SimClock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time_ns, seq)``; the payload and callback do not
    participate in ordering.  ``cancelled`` events stay in the heap but are
    skipped on dispatch (lazy deletion); the owning queue keeps a live
    counter so ``len(queue)`` never scans the heap.
    """

    time_ns: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark this event so it will be skipped when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            if self.queue is not None:
                self.queue._live -= 1


class EventQueue:
    """Deterministic event queue bound to a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: list[Event] = []
        # plain int (not itertools.count) so snapshot/restore can
        # capture and replay the exact tie-break sequence
        self._next_seq = 0
        self._live = 0
        self.dispatched = 0

    def __len__(self) -> int:
        return self._live

    def schedule_at(self, time_ns: int, callback: Callable[..., None], payload: Any = None) -> Event:
        """Schedule ``callback(payload)`` at absolute simulated ``time_ns``."""
        time_ns = round(time_ns)
        if time_ns < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.clock.now} t={time_ns}"
            )
        ev = Event(
            time_ns=time_ns,
            seq=self._next_seq,
            callback=callback,
            payload=payload,
            queue=self,
        )
        self._next_seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def schedule_in(self, delay_ns: int, callback: Callable[..., None], payload: Any = None) -> Event:
        """Schedule ``callback(payload)`` after a relative ``delay_ns``."""
        if delay_ns < 0:
            raise SimulationError(f"negative event delay {delay_ns}")
        return self.schedule_at(self.clock.now + round(delay_ns), callback, payload)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ns if self._heap else None

    def run_next(self) -> bool:
        """Dispatch the next live event, advancing the clock to its time.

        Returns ``False`` when no live events remain.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            ev.queue = None  # detach: a late cancel() must not recount
            self.clock.advance_to(ev.time_ns)
            self.dispatched += 1
            ev.callback(ev.payload)
            return True
        return False

    def run_until(self, time_ns: int) -> int:
        """Dispatch all events with time <= ``time_ns``; return the count.

        The clock ends at ``time_ns`` even if the last event fired earlier,
        matching "simulate this long" semantics.
        """
        fired = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > time_ns:
                break
            self.run_next()
            fired += 1
        self.clock.advance_to(max(self.clock.now, round(time_ns)))
        return fired

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Dispatch events until the queue drains; guard against runaways."""
        fired = 0
        while self.run_next():
            fired += 1
            if fired > max_events:
                raise SimulationError(f"event runaway: dispatched over {max_events} events")
        return fired

    # -- checkpoint support ---------------------------------------------------
    def snapshot(self) -> "EventQueueSnapshot":
        """Capture pending events + ordering state for later restore.

        Live events are captured as ``(time_ns, seq, callback, payload)``
        tuples (cancelled heap residue is dropped - it only existed for
        lazy deletion).  Callbacks/payloads are held by reference; they
        must be picklable if the snapshot is persisted to disk.
        """
        events = [
            (ev.time_ns, ev.seq, ev.callback, ev.payload)
            for ev in self._heap
            if not ev.cancelled
        ]
        return EventQueueSnapshot(
            events=events,
            next_seq=self._next_seq,
            dispatched=self.dispatched,
        )

    def restore(self, snap: "EventQueueSnapshot") -> None:
        """Replace the queue's pending events with a snapshot's.

        The clock itself is owned by the caller (restore it first);
        re-inserted events keep their original ``seq`` so tie-breaks
        replay identically.
        """
        self._heap = []
        for time_ns, seq, callback, payload in snap.events:
            if time_ns < self.clock.now:
                raise SimulationError(
                    f"snapshot event at t={time_ns} precedes clock {self.clock.now}"
                )
            heapq.heappush(
                self._heap,
                Event(
                    time_ns=time_ns,
                    seq=seq,
                    callback=callback,
                    payload=payload,
                    queue=self,
                ),
            )
        self._live = len(snap.events)
        self._next_seq = snap.next_seq
        self.dispatched = snap.dispatched


@dataclass
class EventQueueSnapshot:
    """Restorable image of an :class:`EventQueue` (see ``snapshot()``)."""

    events: list[tuple[int, int, Callable[..., None], Any]]
    next_seq: int
    dispatched: int


# -- periodic simulation checkpoints ------------------------------------------

#: bumped whenever the on-disk checkpoint layout changes; stale files
#: are treated as absent, never mis-restored.
CHECKPOINT_VERSION = 1

_CHECKPOINT_MAGIC = "uvmrepro-checkpoint"


class SimulationCheckpointer:
    """Periodic atomic pickle snapshots of a running simulation.

    Cadence is counted in *simulation phases* (``maybe_save`` calls),
    never wall-clock, so checkpoint timing is deterministic and - because
    saving only reads state - a checkpointed run stays bit-identical to
    an unchained one.  Files are written atomically (tempfile + fsync +
    ``os.replace`` + directory fsync) so a crash mid-save leaves the
    previous checkpoint intact, and they are keyed by the caller with
    the content-addressed cache key so a snapshot can never be restored
    into a different simulation or code version.
    """

    def __init__(
        self,
        path: str | Path,
        every_phases: int = 256,
        on_save: Optional[Callable[[int], None]] = None,
    ) -> None:
        if every_phases < 1:
            raise CheckpointError("checkpoint cadence must be >= 1 phase")
        self.path = Path(path)
        self.every_phases = int(every_phases)
        #: called with the save ordinal after each durable save (used by
        #: chaos to crash at a deterministic post-checkpoint boundary).
        self.on_save = on_save
        self.saves = 0
        #: set by the execute path when a run restored from this file.
        self.resumed = False
        self._since_save = 0

    def exists(self) -> bool:
        return self.path.is_file()

    def maybe_save(self, sim: Any) -> bool:
        """Save when the phase cadence elapses; True if a save happened."""
        self._since_save += 1
        if self._since_save < self.every_phases:
            return False
        self._since_save = 0
        self.save(sim)
        return True

    def save(self, sim: Any) -> None:
        """Atomically persist ``sim`` (any picklable object graph)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    (_CHECKPOINT_MAGIC, CHECKPOINT_VERSION, sim),
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(self.path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.saves += 1
        if self.on_save is not None:
            self.on_save(self.saves)

    def load(self) -> Optional[Any]:
        """The checkpointed object, or ``None`` (missing/corrupt/stale).

        A checkpoint that cannot be restored is deleted and ignored:
        resume is an optimization, so the worst case is recomputing
        from scratch - never restoring garbage.
        """
        try:
            with self.path.open("rb") as fh:
                payload = pickle.load(fh)
        except OSError:
            return None
        except Exception:
            self.clear()
            return None
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != _CHECKPOINT_MAGIC
            or payload[1] != CHECKPOINT_VERSION
        ):
            self.clear()
            return None
        return payload[2]

    def clear(self) -> None:
        """Remove the checkpoint file (called after a successful run)."""
        try:
            self.path.unlink()
        except OSError:
            pass


def _fsync_dir(path: Path) -> None:
    """Durably persist a directory's entries (the rename itself)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs
        pass
    finally:
        os.close(fd)
