"""Discrete-event simulation substrate: clock, engine, cost model, stats.

This subpackage is deliberately independent of UVM semantics: it provides
the simulated clock, a small event-queue engine, seeded randomness, the
calibrated :class:`~repro.sim.costmodel.CostModel`, and hierarchical
category timers used to reproduce the paper's driver-time breakdowns.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Event, EventQueue
from repro.sim.costmodel import CostModel
from repro.sim.rng import SimRng
from repro.sim.stats import CategoryTimer, CounterSet, TimeBreakdown

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "CostModel",
    "SimRng",
    "CategoryTimer",
    "CounterSet",
    "TimeBreakdown",
]
