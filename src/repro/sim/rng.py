"""Seeded randomness for deterministic simulations.

The GPU's block scheduler and fault-arrival interleaving are
nondeterministic on real hardware (Section IV-B: "there is no fixed
ordering due to the nondeterminism of the GPU parallelism").  The
simulator reproduces that *statistically* while remaining bit-for-bit
reproducible under a fixed seed: every stochastic choice flows through a
single :class:`SimRng`, and derived generators are forked with stable
stream names so adding randomness in one component never perturbs another.
"""

from __future__ import annotations

import zlib

import numpy as np


class SimRng:
    """A named tree of deterministic numpy generators."""

    def __init__(self, seed: int = 0x5EED, name: str = "root") -> None:
        self.seed = int(seed) & 0xFFFFFFFF
        self.name = name
        self._gen = np.random.default_rng(self.seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for vectorized draws)."""
        return self._gen

    def fork(self, stream: str) -> "SimRng":
        """Derive an independent generator for component ``stream``.

        The child seed mixes the parent seed with a CRC of the stream name,
        so e.g. ``rng.fork("scheduler")`` is stable across runs and
        independent of draw order elsewhere.
        """
        mix = zlib.crc32(stream.encode("utf-8"))
        child_seed = (self.seed * 0x9E3779B1 + mix) & 0xFFFFFFFF
        return SimRng(child_seed, name=f"{self.name}/{stream}")

    # -- convenience wrappers ------------------------------------------------
    def integers(self, low: int, high: int, size: int | None = None):
        """Uniform integers in ``[low, high)``."""
        return self._gen.integers(low, high, size=size)

    def permutation(self, n_or_array):
        """A random permutation of ``range(n)`` or of an array."""
        return self._gen.permutation(n_or_array)

    def shuffle(self, array) -> None:
        """In-place shuffle."""
        self._gen.shuffle(array)

    def uniform(self, low: float = 0.0, high: float = 1.0, size: int | None = None):
        """Uniform floats in ``[low, high)``."""
        return self._gen.uniform(low, high, size=size)

    def jitter_order(
        self, n: int, strength: float = 0.15, window: float | None = None
    ) -> np.ndarray:
        """Indices ``0..n-1`` in *mostly* ascending order with local jitter.

        Models the GPU block scheduler's preference for lower-numbered
        blocks combined with nondeterministic dispatch (Fig. 7 "regular"
        pattern).  ``strength`` is the jitter amplitude as a fraction of
        ``n``; pass ``window`` to use an *absolute* jitter amplitude
        instead (physical reorder windows - e.g. SM occupancy - do not
        grow with grid size).  0 gives the identity order.
        """
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        sigma = float(window) if window is not None else strength * n
        if sigma <= 0:
            return np.arange(n, dtype=np.int64)
        keys = np.arange(n, dtype=np.float64)
        keys += self._gen.normal(0.0, max(sigma, 1e-9), size=n)
        return np.argsort(keys, kind="stable").astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimRng(seed={self.seed:#010x}, name={self.name!r})"
