"""Ablation: flexible allocation granularity (Section VI-B).

"2MB blocks may be too coarse for allocations and evictions for
irregular applications" - sweep the VABlock size for oversubscribed
random access and quantify the transfer-amplification reduction.
"""

from benchmarks.conftest import run_exhibit
from repro.ext.flexible_granularity import run_granularity_ablation


def test_ablation_granularity(benchmark, save_render):
    result = run_exhibit(benchmark, run_granularity_ablation)
    save_render("ablation_granularity", result.render())

    coarse = result.rows[-1]  # 2 MiB
    fine = result.rows[0]  # 256 KiB
    assert coarse.vablock_bytes > fine.vablock_bytes
    # finer granules cut wasted allocation and transfer amplification
    assert fine.amplification < 0.6 * coarse.amplification
    assert fine.total_time_us < coarse.total_time_us
