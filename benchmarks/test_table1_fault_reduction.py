"""Bench: regenerate Table I - fault reduction for all eight workloads."""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup
from repro.experiments.table1 import run_table1
from repro.units import MiB


def test_table1_fault_reduction(benchmark, save_render):
    setup = ExperimentSetup().with_gpu(memory_bytes=256 * MiB)
    result = run_exhibit(benchmark, run_table1, setup=setup, data_fraction=0.375)
    save_render("table1_fault_reduction", result.render())

    assert len(result.rows) == 8
    # paper floor: every workload's coverage is substantial (>=64% there)
    for row in result.rows:
        assert row.reduction_pct >= 60, f"{row.workload}: {row.reduction_pct:.1f}%"
    # scattering faults saturates density fastest: random beats regular
    # and sits near the top (97.95% in the paper)
    assert result.row("random").reduction_pct > result.row("regular").reduction_pct
    assert result.row("random").reduction_pct > 90
