"""Bench: regenerate Fig. 8 - SGEMM eviction pattern at ~120-130%."""

from benchmarks.conftest import run_exhibit
from repro.experiments.fig8 import run_fig8


def test_fig8_eviction_pattern(benchmark, save_render):
    result = run_exhibit(benchmark, run_fig8)
    save_render("fig8_eviction_pattern", result.render())

    assert result.oversubscription > 1.1
    assert result.n_evictions > 0
    # the paper's worst case: data evicted immediately prior to being
    # paged back in, because the LRU is ignorant of on-GPU reuse
    assert result.refaulted_evictions > 0
    assert result.refault_fraction > 0.2
