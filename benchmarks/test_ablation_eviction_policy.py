"""Ablation: fault-driven LRU vs access-counter eviction (Section VI-B).

Quantifies the headroom of the paper's "GPU memory access-aware
eviction" path: Volta access counters see on-GPU reuse the fault-driven
LRU is blind to, so hot SGEMM bands stop being evicted ahead of reuse.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.common import gemm_wave_setup
from repro.experiments.runner import simulate
from repro.trace.export import render_series
from repro.workloads.sgemm import SgemmWorkload


def _compare():
    base = gemm_wave_setup()
    counter = base.with_gpu(track_access_counters=True).with_driver(
        eviction_policy="access_counter"
    )
    rows = []
    for label, setup in (("fault-lru", base), ("access-counter", counter)):
        run = simulate(SgemmWorkload(n=2816), setup)
        rows.append(
            (
                label,
                run.total_time_ns / 1000.0,
                run.evictions,
                run.pages_evicted,
                run.dma.total_bytes >> 20,
            )
        )
    return rows


def test_ablation_eviction_policy(benchmark, save_render):
    rows = run_exhibit(benchmark, _compare)
    text = render_series(
        rows,
        headers=("policy", "time(us)", "evictions", "pages evicted", "MiB moved"),
        title="Ablation - eviction policy on oversubscribed SGEMM (142%)",
    )
    save_render("ablation_eviction_policy", text)

    lru, counter = rows
    # the counter-guided policy reduces evicted-page churn and total time
    assert counter[3] < lru[3]  # pages evicted
    assert counter[1] < lru[1]  # time
