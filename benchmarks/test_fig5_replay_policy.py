"""Bench: regenerate Fig. 5 - the batch (no-flush) policy vs the default."""

from benchmarks.conftest import run_exhibit
from repro.experiments.fig5 import run_policy_comparison


def test_fig5_replay_policy(benchmark, save_render):
    result = run_exhibit(benchmark, run_policy_comparison)
    save_render("fig5_replay_policy", result.render())

    flush_big = result.batch_flush.rows[-1]
    batch_big = result.batch.rows[-1]
    # replay-policy cost severely diminished without the flush charges
    assert batch_big.replay_us < 0.5 * flush_big.replay_us
    # pre-processing greatly increased by duplicate faults
    assert batch_big.preprocess_us > 1.1 * flush_big.preprocess_us
