"""Bench: regenerate Fig. 10 - SGEMM compute rate vs oversubscription."""

from benchmarks.conftest import run_exhibit
from repro.experiments.fig10 import run_fig10


def test_fig10_sgemm_compute_rate(benchmark, save_render):
    result = run_exhibit(benchmark, run_fig10)
    save_render("fig10_sgemm_compute_rate", result.render())

    peak = result.peak_row
    # rate peaks near the capacity boundary...
    assert 0.8 <= peak.oversubscription <= 1.35
    # ...and "performance degrades significantly after 120%"
    deepest = max(result.rows, key=lambda r: r.oversubscription)
    assert deepest.oversubscription > 1.6
    assert deepest.gflops < 0.7 * peak.gflops
    # in-core sizes never evict
    for row in result.rows:
        if row.oversubscription < 0.9:
            assert row.evictions == 0
