"""Serve-layer throughput benchmark: cold vs batched vs warm-cache.

Measures end-to-end jobs/sec of :class:`SimulationService` on a 64-job
repeat-heavy mix (16 unique specs spanning 4 batch signatures, each
submitted 4 times) under three configurations:

* ``cold``    - every job computed solo: ``batch_max=1``, memory tier
  off, sweep memo off, and a fresh store per repeat wave so nothing is
  ever reused.  This is the per-job full-compute path a cache-less
  service would pay for the whole mix.
* ``batched`` - one service with warm workers, batched dispatch
  (``batch_max=8``) and the in-memory result tier: unique specs run as
  signature-grouped batches on warmed builds, repeats are answered from
  the hot tier at submit.
* ``warm``    - the same 64-job mix resubmitted to the batched service:
  pure memory-tier hits.

Writes ``BENCH_serve_throughput.json`` at the repo root and, with
``--check``, exits non-zero when batched throughput is below
``--min-speedup`` (default 3.0) times cold throughput - the CI
perf-smoke budget.

``--gateway`` benchmarks the fleet tier instead: the same 64-job mix
submitted over HTTP through a consistent-hash gateway
(:mod:`repro.fleet`) fronting a 3-shard fleet of tuned services,
against the single-shard cold baseline.  The container has one CPU, so
the fleet's win comes from what sharding preserves - all repeats of a
content key route to the same shard's warm workers and memory tier -
plus shard-parallel queueing, not from raw CPU parallelism.  Writes
``BENCH_fleet_throughput.json``; with ``--check`` the budget is
``--min-fleet-speedup`` (default 2.0) times cold.

Usage::

    PYTHONPATH=src python benchmarks/serve_throughput.py [--check]
    PYTHONPATH=src python benchmarks/serve_throughput.py --gateway [--check]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.serve.jobs import JobSpec, JobState
from repro.serve.service import ServiceConfig, SimulationService
from repro.units import MiB

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve_throughput.json"
FLEET_OUTPUT = REPO_ROOT / "BENCH_fleet_throughput.json"
FLEET_SHARDS = 3

DATA_MIB = 48
GPU_MIB = 32
REPEATS = 4

#: spec variants per workload; distinct content keys, one batch
#: signature per workload (driver/cost overrides apply post-build).
VARIANTS = (
    {},
    {"driver": {"prefetch_enabled": False}},
    {"driver": {"replay_policy": "once"}},
    {"cost": {"driver_wakeup_ns": 9_500}},
)
WORKLOADS = ("sgemm", "stream", "random", "regular")


def unique_specs() -> list[JobSpec]:
    specs = []
    for workload in WORKLOADS:
        for variant in VARIANTS:
            specs.append(
                JobSpec(
                    workload=workload,
                    data_bytes=DATA_MIB * MiB,
                    gpu={"memory_bytes": GPU_MIB * MiB},
                    **variant,
                )
            )
    return specs


def service_config(
    batch_max: int, mem_cache_mb: int, shard_name: str | None = None
) -> ServiceConfig:
    return ServiceConfig(
        n_workers=1,
        batch_max=batch_max,
        mem_cache_mb=mem_cache_mb,
        sweep_cache_dir="",  # isolate the serve tiers from the sweep memo
        checkpoint_every_phases=0,
        retry_backoff_s=0.05,
        shard_name=shard_name,
    )


def run_wave(svc: SimulationService, specs: list[JobSpec]) -> None:
    records = [svc.submit(spec) for spec in specs]
    for record in records:
        final = svc.wait(record.job_id, timeout=600.0)
        if final.state is not JobState.DONE:
            raise RuntimeError(
                f"job {final.job_id} ended {final.state.value}: {final.error}"
            )


def bench_cold(specs: list[JobSpec], scratch: Path) -> float:
    """Each repeat wave on a fresh store: 64 solo full computes."""
    t0 = time.perf_counter()
    for wave in range(REPEATS):
        with SimulationService(
            str(scratch / f"cold-{wave}"), service_config(1, 0)
        ) as svc:
            run_wave(svc, specs)
    return time.perf_counter() - t0


def bench_batched(specs: list[JobSpec], scratch: Path) -> tuple[float, float, dict]:
    """One tuned service: batched mix, then a warm resubmission."""
    with SimulationService(
        str(scratch / "batched"), service_config(8, 64)
    ) as svc:
        t0 = time.perf_counter()
        for _ in range(REPEATS):
            run_wave(svc, specs)
        batched_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(REPEATS):
            run_wave(svc, specs)
        warm_s = time.perf_counter() - t0
        counters = dict(svc.metrics()["counters"])
    return batched_s, warm_s, counters


def bench_gateway(specs: list[JobSpec], scratch: Path) -> tuple[float, dict]:
    """The 64-job mix over HTTP through a gateway + 3 tuned shards.

    Everything rides the real wire: shard HTTP servers, the gateway's
    routing/health layer, and an unmodified :class:`ServiceClient`
    submitting to the gateway URL.
    """
    from repro.fleet import (
        FleetGateway,
        GatewayConfig,
        ShardSpec,
        serve_gateway_http,
    )
    from repro.serve.client import ServiceClient
    from repro.serve.http_api import serve_http

    shards = []
    try:
        for i in range(FLEET_SHARDS):
            svc = SimulationService(
                str(scratch / f"fleet-shard{i}"),
                service_config(8, 64, shard_name=f"shard{i}"),
            ).start()
            server = serve_http(svc, "127.0.0.1", 0)
            shards.append((svc, server))
        gateway = FleetGateway(
            GatewayConfig(
                shards=tuple(
                    ShardSpec(f"shard{i}", server.url)
                    for i, (_, server) in enumerate(shards)
                ),
                vnodes=64,
                probe_interval_s=0.5,
                read_timeout_s=600.0,
            )
        ).start()
        gateway_server = serve_gateway_http(gateway, "127.0.0.1", 0)
        try:
            client = ServiceClient(
                gateway_server.url, timeout_s=600.0, retries=2
            )
            t0 = time.perf_counter()
            for _ in range(REPEATS):
                records = [client.submit(spec.to_dict()) for spec in specs]
                for record in records:
                    final = client.wait(record["job_id"], timeout_s=600.0)
                    if final["state"] != "done":
                        raise RuntimeError(
                            f"job {final['job_id']} ended {final['state']}: "
                            f"{final.get('error')}"
                        )
            fleet_s = time.perf_counter() - t0
            counters = dict(gateway.metrics()["counters"])
        finally:
            gateway_server.shutdown()
            gateway_server.server_close()
            gateway.stop()
    finally:
        for svc, server in shards:
            server.shutdown()
            svc.stop()
    return fleet_s, counters


def run_fleet_benchmark(args: argparse.Namespace) -> int:
    specs = unique_specs()
    n_jobs = len(specs) * REPEATS
    with tempfile.TemporaryDirectory(prefix="uvmrepro-bench-") as tmp:
        scratch = Path(tmp)
        print(f"cold: {n_jobs} solo jobs ({len(specs)} unique x {REPEATS}) ...")
        cold_s = bench_cold(specs, scratch)
        print(f"  {cold_s:.2f}s  ({n_jobs / cold_s:.2f} jobs/s)")
        print(
            f"fleet: same mix over HTTP via gateway + {FLEET_SHARDS} "
            "tuned shards ..."
        )
        fleet_s, counters = bench_gateway(specs, scratch)
        print(f"  {fleet_s:.2f}s  ({n_jobs / fleet_s:.2f} jobs/s)")

    speedup = (n_jobs / fleet_s) / (n_jobs / cold_s)
    doc = {
        "description": (
            "Fleet-gateway throughput on the 64-job repeat-heavy mix "
            "(16 unique specs, each submitted 4 times) submitted over "
            "HTTP through the consistent-hash gateway fronting "
            f"{FLEET_SHARDS} tuned service shards (batch_max=8, memory "
            "tier on), against the single-shard cold baseline (solo "
            "dispatch, all tiers off, fresh store per wave). One-CPU "
            "container: the fleet win is key-affinity (repeats hit "
            "their shard's warm workers and memory tier), not CPU "
            "parallelism. Compare ratios, not absolutes."
        ),
        "mix": {
            "jobs": n_jobs,
            "unique_specs": len(specs),
            "batch_signatures": len(WORKLOADS),
            "repeats": REPEATS,
            "data_bytes": DATA_MIB * MiB,
            "gpu_memory_bytes": GPU_MIB * MiB,
            "workloads": list(WORKLOADS),
        },
        "fleet": {
            "shards": FLEET_SHARDS,
            "vnodes": 64,
            "shard_config": {
                "n_workers": 1, "batch_max": 8, "mem_cache_mb": 64
            },
            "transport": "http (client -> gateway -> shard)",
        },
        "results": {
            "cold": {"wall_seconds": round(cold_s, 3),
                     "jobs_per_sec": round(n_jobs / cold_s, 3)},
            "fleet": {"wall_seconds": round(fleet_s, 3),
                      "jobs_per_sec": round(n_jobs / fleet_s, 3)},
        },
        "speedup_fleet_vs_cold": round(speedup, 2),
        "budget": {"min_speedup_fleet_vs_cold": args.min_fleet_speedup},
        "gateway_counters": {
            key: counters.get(key, 0)
            for key in (
                "fleet.jobs_routed", "fleet.reroutes", "fleet.probes",
                "fleet.shard_down", "jobs.submitted", "simulations.run",
                "cache.mem_hits",
            )
        },
    }
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"speedup (fleet vs cold): {speedup:.2f}x  -> {args.output}")
    if args.check and speedup < args.min_fleet_speedup:
        print(
            f"FAIL: fleet speedup {speedup:.2f}x below budget "
            f"{args.min_fleet_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when batched speedup is below --min-speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required batched-vs-cold throughput ratio (default 3.0)",
    )
    parser.add_argument(
        "--gateway", action="store_true",
        help="benchmark the 3-shard fleet gateway against cold instead "
        "of the single-service tiers",
    )
    parser.add_argument(
        "--min-fleet-speedup", type=float, default=2.0,
        help="required fleet-vs-cold throughput ratio with --gateway "
        "(default 2.0)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help=f"result JSON path (default {OUTPUT}, or {FLEET_OUTPUT} "
        "with --gateway)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = FLEET_OUTPUT if args.gateway else OUTPUT
    if args.gateway:
        return run_fleet_benchmark(args)

    specs = unique_specs()
    n_jobs = len(specs) * REPEATS
    with tempfile.TemporaryDirectory(prefix="uvmrepro-bench-") as tmp:
        scratch = Path(tmp)
        print(f"cold: {n_jobs} solo jobs ({len(specs)} unique x {REPEATS}) ...")
        cold_s = bench_cold(specs, scratch)
        print(f"  {cold_s:.2f}s  ({n_jobs / cold_s:.2f} jobs/s)")
        print("batched: same mix, warm workers + batches + memory tier ...")
        batched_s, warm_s, counters = bench_batched(specs, scratch)
        print(f"  {batched_s:.2f}s  ({n_jobs / batched_s:.2f} jobs/s)")
        print(f"warm: resubmission, pure memory-tier hits ...")
        print(f"  {warm_s:.2f}s  ({n_jobs / warm_s:.2f} jobs/s)")

    speedup = (n_jobs / batched_s) / (n_jobs / cold_s)
    doc = {
        "description": (
            "Serve-layer throughput on a 64-job repeat-heavy mix "
            "(16 unique specs = 4 batch signatures x 4 driver/cost "
            "variants, each submitted 4 times). cold = solo dispatch, "
            "all tiers off, fresh store per wave (64 full computes); "
            "batched = one service with warm workers, batch_max=8 and "
            "the in-memory result tier; warm = the same mix resubmitted "
            "to that service. Wall times from the growth container "
            "(1 CPU, shared/noisy - compare ratios, not absolutes)."
        ),
        "mix": {
            "jobs": n_jobs,
            "unique_specs": len(specs),
            "batch_signatures": len(WORKLOADS),
            "repeats": REPEATS,
            "data_bytes": DATA_MIB * MiB,
            "gpu_memory_bytes": GPU_MIB * MiB,
            "workloads": list(WORKLOADS),
        },
        "config": {"n_workers": 1, "batch_max": 8, "mem_cache_mb": 64},
        "results": {
            "cold": {"wall_seconds": round(cold_s, 3),
                     "jobs_per_sec": round(n_jobs / cold_s, 3)},
            "batched": {"wall_seconds": round(batched_s, 3),
                        "jobs_per_sec": round(n_jobs / batched_s, 3)},
            "warm": {"wall_seconds": round(warm_s, 3),
                     "jobs_per_sec": round(n_jobs / warm_s, 3)},
        },
        "speedup_batched_vs_cold": round(speedup, 2),
        "budget": {"min_speedup_batched_vs_cold": args.min_speedup},
        "tuned_service_counters": {
            key: counters.get(key, 0)
            for key in (
                "jobs.submitted", "jobs.completed", "simulations.run",
                "cache.hits.store", "cache.mem_hits", "cache.disk_hits",
                "cache.misses",
            )
        },
    }
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"speedup (batched vs cold): {speedup:.2f}x  -> {args.output}")
    if args.check and speedup < args.min_speedup:
        print(
            f"FAIL: batched speedup {speedup:.2f}x below budget "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
