"""Bench: regenerate Table II - SGEMM fault/eviction scaling."""

from benchmarks.conftest import run_exhibit
from repro.experiments.table2 import run_table2


def test_table2_sgemm_fault_scaling(benchmark, save_render):
    result = run_exhibit(benchmark, run_table2)
    save_render("table2_sgemm_fault_scaling", result.render())

    in_core = [r for r in result.rows if r.oversubscription < 0.9]
    over = sorted(
        (r for r in result.rows if r.oversubscription > 0.9), key=lambda r: r.n
    )
    # zero evictions while the problem fits (paper rows 29228-30764)
    for row in in_core:
        assert row.pages_evicted == 0
    # pages evicted rise monotonically with problem size...
    values = [r.pages_evicted for r in over]
    assert values == sorted(values)
    # ...and the paper's degradation correlate climbs hard past the cliff
    assert over[-1].evictions_per_fault > 2 * max(over[0].evictions_per_fault, 0.1)
    assert over[-1].evictions_per_fault > 1.0
