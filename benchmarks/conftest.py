"""Benchmark harness configuration.

Every paper exhibit gets one benchmark that (a) regenerates the exhibit's
rows/series on the scaled platform, (b) saves the rendered output under
``benchmarks/results/`` so the regeneration artifacts survive the run,
and (c) asserts the paper's qualitative shape so a regression in the
simulator turns the bench red, not just slow.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_render(results_dir):
    """Persist an exhibit's rendered rows/series and echo a pointer."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] written to {path}\n{text}")
        return path

    return _save


def run_exhibit(benchmark, fn, **kwargs):
    """Run an exhibit generator exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
