"""Bench: regenerate Fig. 1 - explicit vs UVM vs UVM+prefetch latency."""

from benchmarks.conftest import run_exhibit
from repro.experiments.fig1 import run_fig1
from repro.experiments.runner import ExperimentSetup
from repro.units import MiB


def test_fig1_access_latency(benchmark, save_render):
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    result = run_exhibit(
        benchmark,
        run_fig1,
        setup=setup,
        fractions=(0.002, 0.01, 0.05, 0.25, 0.5, 0.9, 1.2, 1.5),
    )
    save_render("fig1_access_latency", result.render())

    # paper observation (1): >= ~10x for un-prefetched UVM in-core
    for row in result.rows:
        if 0.25 <= row.fraction <= 0.9:
            assert row.uvm_slowdown >= 8
    # observation (2): prefetching cuts the cost but stays above baseline
    for row in result.rows:
        if 0.25 <= row.fraction <= 0.9:
            assert row.uvm_prefetch_us < 0.6 * row.uvm_us
            assert row.prefetch_slowdown > 1.5
    # observation (3): random oversubscription adds a hard per-byte jump
    rnd = result.pattern_rows("random")
    under = next(r for r in rnd if r.fraction == 0.9)
    over = next(r for r in rnd if r.fraction == 1.5)
    per_byte_jump = (over.uvm_prefetch_us / over.data_bytes) / (
        under.uvm_prefetch_us / under.data_bytes
    )
    assert per_byte_jump > 4
