"""Bench: regenerate Fig. 4 - PMA alloc / migrate / map service split."""

from benchmarks.conftest import run_exhibit
from repro.experiments.fig4 import run_fig4


def test_fig4_service_breakdown(benchmark, save_render):
    result = run_exhibit(benchmark, run_fig4)
    save_render("fig4_service_breakdown", result.render())

    smallest, largest = result.rows[0], result.rows[-1]
    # PMA allocation dominates small sizes...
    assert smallest.pma_share > 0.3
    # ...and over-allocation caching keeps it flat and negligible later
    assert largest.pma_alloc_us <= 4 * smallest.pma_alloc_us
    assert largest.pma_share < 0.02
    # migrate/map grow with the page count
    assert largest.migrate_us > 50 * smallest.migrate_us
    assert largest.map_us > smallest.map_us
