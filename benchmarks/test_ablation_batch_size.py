"""Ablation: fault batch size (paper Section III-D, flagged as future work).

"The batch size affects the cost and the optimal size depends on
application access patterns... larger batches have a better chance to
have more page faults in the same VABlock, which better utilizes the
bandwidth and amortizes migration cost, at the cost of potentially
delaying SMs."  The sweep quantifies exactly that trade-off on the two
synthetic patterns.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess, RegularAccess

BATCH_SIZES = (32, 128, 256, 1024)


def _sweep():
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    grid = [
        (workload_cls, batch)
        for workload_cls in (RegularAccess, RandomAccess)
        for batch in BATCH_SIZES
    ]
    runs = run_sweep(
        [
            (
                workload_cls(16 * MiB),
                setup.with_driver(batch_size=batch, prefetch_enabled=False),
            )
            for workload_cls, batch in grid
        ]
    )
    rows = []
    for (workload_cls, batch), run in zip(grid, runs):
        bins = run.counters["batches.vablock_bins"]
        batches = run.counters["batches.count"]
        rows.append(
            (
                workload_cls.name,
                batch,
                run.total_time_ns / 1000.0,
                batches,
                bins / max(batches, 1),
                run.counters["replays.issued"],
            )
        )
    return rows


def test_ablation_batch_size(benchmark, save_render):
    rows = run_exhibit(benchmark, _sweep)
    text = render_series(
        rows,
        headers=("pattern", "batch", "time(us)", "batches", "bins/batch", "replays"),
        title="Ablation - fault batch size (prefetch off)",
        floatfmt="{:.2f}",
    )
    save_render("ablation_batch_size", text)

    by_key = {(r[0], r[1]): r for r in rows}
    # larger batches amortize per-batch costs: fewer batches, fewer replays
    for pattern in ("regular", "random"):
        assert by_key[(pattern, 1024)][3] < by_key[(pattern, 32)][3]
        assert by_key[(pattern, 1024)][5] < by_key[(pattern, 32)][5]
    # and tiny batches cost real time on both patterns
    assert by_key[("random", 32)][2] > by_key[("random", 256)][2]
