"""Ablation: the three UVM access behaviours (Section III-A).

The paper focuses on paged migration; remote mapping and read-only
duplication are the alternatives it sets aside.  This bench quantifies
when each wins on the simulated platform:

* **sparse single-touch over a large buffer** - the EMOGI-style case
  (the paper's related work [13]): zero-copy remote mapping avoids
  migrating 2 MB-granule allocations for 4 KB touches and sidesteps
  eviction entirely,
* **dense single-touch** - migration amortizes; remote mapping pays the
  interconnect per access and loses,
* **host re-reads of GPU results** - read-only duplication makes the
  host touches free where migration ping-pongs.
"""

import numpy as np

from benchmarks.conftest import run_exhibit
from repro.core.driver import UvmDriver
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.advise import MemAdvise
from repro.sim.rng import SimRng
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.base import HostAccess, KernelPhase


def _run(advise, touched_pages, data_mib, gpu_mib=32, host_reads=False):
    space = AddressSpace()
    buf = space.malloc_managed(data_mib * MiB, name="data")
    if advise is not None:
        space.mem_advise("data", advise)
    streams = [
        WarpStream(i, np.array([int(p)], dtype=np.int64))
        for i, p in enumerate(touched_pages)
    ]
    phases = [KernelPhase(streams=streams)]
    if host_reads:
        phases.append(
            KernelPhase(
                streams=[
                    WarpStream(100_000 + i, np.array([int(p)], dtype=np.int64))
                    for i, p in enumerate(touched_pages)
                ],
                host_before=HostAccess(pages=buf.pages(), writes=False),
            )
        )
    driver = UvmDriver(
        space=space,
        phases=phases,
        gpu_config=GpuDeviceConfig(memory_bytes=gpu_mib * MiB),
        rng=SimRng(9),
    )
    return driver.run()


def _compare():
    rows = []
    rng = np.random.default_rng(7)

    # sparse single-touch: 1 page per VABlock of a 3x-oversized buffer
    data_mib, gpu_mib = 96, 32
    sparse = np.arange(0, data_mib * 256, 512) + rng.integers(
        0, 512, size=data_mib // 2
    )
    for label, advise in (("migrate", None), ("pinned", MemAdvise.PINNED_HOST)):
        run = _run(advise, sparse, data_mib, gpu_mib)
        rows.append(
            (
                "sparse 3x-oversized",
                label,
                run.total_time_ns / 1000.0,
                run.dma.total_bytes >> 20,
                run.evictions,
            )
        )

    # dense single-touch, in-core
    dense = np.arange(16 * 256)
    for label, advise in (("migrate", None), ("pinned", MemAdvise.PINNED_HOST)):
        run = _run(advise, dense, 16, 32)
        rows.append(
            ("dense in-core", label, run.total_time_ns / 1000.0, run.dma.total_bytes >> 20, run.evictions)
        )

    # GPU computes, host re-reads everything, GPU re-reads
    for label, advise in (("migrate", None), ("read_mostly", MemAdvise.READ_MOSTLY)):
        run = _run(advise, dense, 16, 32, host_reads=True)
        rows.append(
            (
                "host re-reads",
                label,
                run.total_time_ns / 1000.0,
                run.dma.total_bytes >> 20,
                run.counters["host.faults"],
            )
        )
    return rows


def test_ablation_memadvise(benchmark, save_render):
    rows = run_exhibit(benchmark, _compare)
    text = render_series(
        rows,
        headers=("scenario", "behaviour", "time(us)", "MiB moved", "evict/hostflt"),
        title="Ablation - UVM access behaviours (Section III-A)",
    )
    save_render("ablation_memadvise", text)

    by_key = {(r[0], r[1]): r for r in rows}
    # sparse oversized: zero-copy wins (no 2MB-granule waste, no eviction)
    assert (
        by_key[("sparse 3x-oversized", "pinned")][2]
        < by_key[("sparse 3x-oversized", "migrate")][2]
    )
    assert by_key[("sparse 3x-oversized", "pinned")][4] == 0
    # dense in-core: migration amortizes and wins
    assert by_key[("dense in-core", "migrate")][2] < by_key[("dense in-core", "pinned")][2]
    # host re-reads: duplication eliminates the CPU-fault ping-pong
    assert by_key[("host re-reads", "read_mostly")][4] == 0
    assert by_key[("host re-reads", "migrate")][4] > 0
    assert (
        by_key[("host re-reads", "read_mostly")][2]
        < by_key[("host re-reads", "migrate")][2]
    )
