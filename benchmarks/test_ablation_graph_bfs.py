"""Ablation: out-of-core BFS - migration vs zero-copy edges (EMOGI).

The paper's related work [13] (EMOGI) shows why UVM migration loses on
out-of-memory graph traversal: each frontier vertex touches a short,
data-dependent adjacency segment, but migration hauls 2 MB-granule
allocations (plus prefetch) for 4 KB touches and thrashes the eviction
path.  Pinning the edge array (remote/zero-copy mapping) moves only the
touched bytes and sidesteps eviction entirely.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.graph import BfsWorkload


def _compare():
    setup = ExperimentSetup().with_gpu(memory_bytes=16 * MiB)
    rows = []
    for pin in (False, True):
        wl = BfsWorkload(n_vertices=1 << 16, avg_degree=64, pin_edges=pin)
        run = simulate(wl, setup)
        rows.append(
            (
                "pinned edges" if pin else "migrate edges",
                f"{wl.required_bytes() / MiB:.0f}MiB",
                run.total_time_ns / 1000.0,
                run.evictions,
                run.dma.total_bytes >> 20,
                run.counters["remote.accesses"],
            )
        )
    return rows


def test_ablation_graph_bfs(benchmark, save_render):
    rows = run_exhibit(benchmark, _compare)
    text = render_series(
        rows,
        headers=("edges policy", "graph", "time(us)", "evictions", "MiB moved", "remote acc"),
        title="Ablation - out-of-core BFS: migration vs zero-copy (EMOGI case)",
    )
    save_render("ablation_graph_bfs", text)

    migrate, pinned = rows
    # migration thrashes: evictions and massive transfer amplification
    assert migrate[3] > 1000
    assert migrate[4] > 10 * 33  # >10x the data size in traffic
    # zero-copy: no evictions, traffic near the touched bytes, big win
    assert pinned[3] == 0
    assert pinned[2] < migrate[2] / 10
