"""Ablation: thrashing mitigation (uvm_perf_thrashing's pin remedy).

The real driver detects evict/re-fault cycles and pins thrashing blocks
with remote mappings - the built-in answer to Section V's worst case.
The bench quantifies it on the pathological pattern: oversubscribed
random access, where the stock pipeline cycles 2 MB allocations for
4 KB touches.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess, RegularAccess


def _compare():
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    mitigated = setup.with_driver(thrashing_mitigation=True)
    grid = [
        (workload_cls, ratio, label, cfg)
        for workload_cls, ratio in ((RandomAccess, 1.5), (RegularAccess, 1.5))
        for label, cfg in (("stock", setup), ("pin-on-thrash", mitigated))
    ]
    runs = run_sweep(
        [
            (workload_cls(int(64 * MiB * ratio)), cfg)
            for workload_cls, ratio, _, cfg in grid
        ]
    )
    return [
        (
            workload_cls.name,
            label,
            run.total_time_ns / 1000.0,
            run.evictions,
            run.counters["thrash.blocks_pinned"],
            run.dma.total_bytes >> 20,
        )
        for (workload_cls, _, label, _), run in zip(grid, runs)
    ]


def test_ablation_thrashing(benchmark, save_render):
    rows = run_exhibit(benchmark, _compare)
    text = render_series(
        rows,
        headers=("pattern", "policy", "time(us)", "evictions", "pinned blocks", "MiB moved"),
        title="Ablation - thrashing mitigation at 150% oversubscription",
    )
    save_render("ablation_thrashing", text)

    by_key = {(r[0], r[1]): r for r in rows}
    # random thrash: pinning wins big
    assert (
        by_key[("random", "pin-on-thrash")][2] < by_key[("random", "stock")][2] / 3
    )
    assert by_key[("random", "pin-on-thrash")][4] > 0
    # regular streams without re-fault cycles: the detector stays quiet
    # and costs (almost) nothing
    assert by_key[("regular", "pin-on-thrash")][4] <= 2
    assert (
        by_key[("regular", "pin-on-thrash")][2]
        < 1.2 * by_key[("regular", "stock")][2]
    )
