"""Ablation: CPU-side fault ping-pong at kernel boundaries.

The reproduction's Table I coverage for iterative solvers runs higher
than the paper's because real UVM ports do host-side work between
kernels (convergence checks, reductions): each host touch of
GPU-resident data takes a CPU fault, migrates the page back, and forces
an uncoverable GPU re-fault next iteration.  This bench quantifies that
mechanism with TeaLeaf's naive-port convergence check enabled.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.tealeaf import TealeafWorkload


def _compare():
    setup = ExperimentSetup().with_gpu(memory_bytes=256 * MiB)
    no_pf = setup.with_driver(prefetch_enabled=False)
    rows = []
    for host_check in (False, True):
        wl = lambda: TealeafWorkload(n=1728, host_check=host_check)  # noqa: E731
        off = simulate(wl(), no_pf)
        on = simulate(wl(), setup)
        reduction = 100.0 * (off.faults_read - on.faults_read) / off.faults_read
        rows.append(
            (
                "naive host check" if host_check else "GPU-resident",
                off.faults_read,
                on.faults_read,
                reduction,
                on.counters["host.faults"],
                on.counters["host.pages_d2h"],
                on.total_time_ns / 1000.0,
            )
        )
    return rows


def test_ablation_host_interaction(benchmark, save_render):
    rows = run_exhibit(benchmark, _compare)
    text = render_series(
        rows,
        headers=(
            "variant",
            "faults (no pf)",
            "faults (pf)",
            "reduction %",
            "host faults",
            "pages d2h",
            "time(us)",
        ),
        title="Ablation - TeaLeaf with host-side convergence checks",
        floatfmt="{:.2f}",
    )
    save_render("ablation_host_interaction", text)

    baseline, pingpong = rows
    # host interaction produces CPU faults and D2H migrations...
    assert pingpong[4] > 0 and pingpong[5] > 0
    assert baseline[4] == 0
    # ...which add uncoverable faults: coverage drops, time rises
    assert pingpong[3] < baseline[3]
    assert pingpong[6] > baseline[6]
