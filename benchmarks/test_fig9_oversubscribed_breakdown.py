"""Bench: regenerate Fig. 9 - oversubscribed breakdown, regular vs random."""

from benchmarks.conftest import run_exhibit
from repro.experiments.fig9 import run_fig9


def test_fig9_oversubscribed_breakdown(benchmark, save_render):
    result = run_exhibit(benchmark, run_fig9)
    save_render("fig9_oversubscribed_breakdown", result.render())

    # "different access patterns show an order of magnitude difference"
    assert result.slowdown_at(1.5) > 10
    # transfer amplification: regular streams ~once; random multiplies
    reg = [r for r in result.pattern_rows("regular") if r.ratio == 1.5][0]
    rnd = [r for r in result.pattern_rows("random") if r.ratio == 1.5][0]
    assert reg.amplification < 2.0
    assert rnd.amplification > 5.0
    # eviction volume explodes only for the irregular pattern
    assert rnd.evictions > 20 * reg.evictions
