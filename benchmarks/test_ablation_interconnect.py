"""Ablation: interconnect class (PCIe 3 vs NVLink-class bandwidth).

Section II cites the x86/PCIe vs Power9/NVLink comparison literature;
the cost model ships both presets.  The what-if shows which UVM costs a
faster link actually removes: wire time shrinks, but the software costs
(per-fault servicing, replays, PMA) do not - so un-prefetched UVM
improves far less than prefetched UVM does.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.sim.costmodel import NVLINK_CLASS, TITAN_V_PCIE3
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.synthetic import RegularAccess


def _sweep():
    grid = []
    for label, cost in (("pcie3", TITAN_V_PCIE3), ("nvlink", NVLINK_CLASS)):
        base = ExperimentSetup(cost=cost).with_gpu(memory_bytes=64 * MiB)
        grid.append((label, "off", base.with_driver(prefetch_enabled=False)))
        grid.append((label, "on", base))
    runs = run_sweep([(RegularAccess(32 * MiB), cfg) for _, _, cfg in grid])
    return [
        (label, prefetch, run.total_time_ns / 1000.0)
        for (label, prefetch, _), run in zip(grid, runs)
    ]


def test_ablation_interconnect(benchmark, save_render):
    rows = run_exhibit(benchmark, _sweep)
    text = render_series(
        rows,
        headers=("link", "prefetch", "time(us)"),
        title="Ablation - interconnect class (regular, 32 MiB)",
    )
    save_render("ablation_interconnect", text)

    by_key = {(r[0], r[1]): r[2] for r in rows}
    # the faster link helps everywhere...
    assert by_key[("nvlink", "off")] < by_key[("pcie3", "off")]
    assert by_key[("nvlink", "on")] < by_key[("pcie3", "on")]
    # ...but bulk transfers (prefetch on) benefit proportionally more
    # than fault-bound paging, whose cost is software-dominated
    speedup_off = by_key[("pcie3", "off")] / by_key[("nvlink", "off")]
    speedup_on = by_key[("pcie3", "on")] / by_key[("nvlink", "on")]
    assert speedup_on > speedup_off
