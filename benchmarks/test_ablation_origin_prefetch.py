"""Ablation: fault-origin stream prefetching vs the density tree.

Section VI-B's "increased fault origin information" what-if: per-SM
stride detection has real lead for strided patterns but no density
inference, so the stock tree still wins on saturation-friendly access -
exactly the trade-off the paper sketches.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess, RegularAccess


def _compare():
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    variants = {
        "none": setup.with_driver(prefetch_enabled=False),
        "tree-51": setup,
        "origin": setup.with_driver(prefetcher_kind="origin"),
    }
    grid = [
        (workload_cls, label, cfg)
        for workload_cls in (RegularAccess, RandomAccess)
        for label, cfg in variants.items()
    ]
    runs = run_sweep([(workload_cls(24 * MiB), cfg) for workload_cls, _, cfg in grid])
    return [
        (
            workload_cls.name,
            label,
            run.total_time_ns / 1000.0,
            run.faults_read,
            run.counters["pages.prefetch_h2d"],
        )
        for (workload_cls, label, _), run in zip(grid, runs)
    ]


def test_ablation_origin_prefetch(benchmark, save_render):
    rows = run_exhibit(benchmark, _compare)
    text = render_series(
        rows,
        headers=("workload", "prefetcher", "time(us)", "faults", "prefetched pages"),
        title="Ablation - origin-information prefetching vs density tree",
    )
    save_render("ablation_origin_prefetch", text)

    by_key = {(r[0], r[1]): r for r in rows}
    # origin info pays off on the strided regular pattern...
    assert by_key[("regular", "origin")][3] < by_key[("regular", "none")][3]
    assert by_key[("regular", "origin")][4] > 0
    # ...but cannot beat density saturation (no stride to detect means
    # the tree keeps its edge on random)
    assert by_key[("random", "tree-51")][3] <= by_key[("random", "origin")][3]
