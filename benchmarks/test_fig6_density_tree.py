"""Bench: Fig. 6 - the density-tree cascade walkthrough + mechanism checks."""

import numpy as np

from benchmarks.conftest import run_exhibit
from repro.core.prefetch import TreePrefetcher
from repro.experiments.fig6 import run_fig6


def test_fig6_density_tree(benchmark, save_render):
    result = run_exhibit(benchmark, run_fig6)
    save_render("fig6_density_tree", result.render())

    sizes = [s.region_size for s in result.steps]
    assert sizes[0] == 16  # stage one: the big-page upgrade
    assert sizes[-1] == 512  # cascade completes the block
    assert result.steps[-1].total_flagged == 512

    # aggressive threshold: a single fault fetches the whole block
    aggressive = run_fig6(threshold=1)
    assert aggressive.faults_to_fill == 1

    # mechanism spot-check at paper defaults: 51% is a strict bound
    pf = TreePrefetcher(threshold=51)
    lone = pf.compute(np.zeros(512, dtype=bool), np.array([0]))
    assert lone.max_region == 16  # 16/32 = 50% < 51%: no growth
