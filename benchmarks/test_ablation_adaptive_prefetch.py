"""Ablation: adaptive prefetch-threshold tuning (Section VI-B).

The paper's suggestion: aggressive prefetching when the footprint fits
("little reason not to"), conservative when oversubscribed.  The bench
compares static-default, static-aggressive, and adaptive across the
capacity boundary.
"""

from benchmarks.conftest import run_exhibit
from repro.experiments.runner import ExperimentSetup, run_sweep
from repro.trace.export import render_series
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess


def _compare():
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    variants = {
        "static-51": setup,
        "static-1": setup.with_driver(density_threshold=1),
        "adaptive": setup.with_driver(adaptive_prefetch=True),
    }
    grid = [
        (frac, label, cfg)
        for frac in (0.5, 1.25)
        for label, cfg in variants.items()
    ]
    runs = run_sweep(
        [(RandomAccess(int(64 * MiB * frac)), cfg) for frac, _, cfg in grid]
    )
    return [
        (
            f"{frac:.0%}",
            label,
            run.total_time_ns / 1000.0,
            run.faults_read,
            run.evictions,
        )
        for (frac, label, _), run in zip(grid, runs)
    ]


def test_ablation_adaptive_prefetch(benchmark, save_render):
    rows = run_exhibit(benchmark, _compare)
    text = render_series(
        rows,
        headers=("size/GPU", "prefetch", "time(us)", "faults", "evictions"),
        title="Ablation - adaptive prefetch threshold (random access)",
    )
    save_render("ablation_adaptive_prefetch", text)

    by_key = {(r[0], r[1]): r for r in rows}
    # undersubscribed: adaptive converges to aggressive-class behaviour
    assert by_key[("50%", "adaptive")][2] <= 1.2 * by_key[("50%", "static-1")][2]
    assert by_key[("50%", "adaptive")][3] <= by_key[("50%", "static-51")][3]
    # oversubscribed: the footprint guard keeps adaptive off the
    # aggressive cliff-edge without manual tuning
    assert by_key[("125%", "adaptive")][2] < 5 * by_key[("125%", "static-51")][2]
