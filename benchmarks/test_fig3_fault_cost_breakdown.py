"""Bench: regenerate Fig. 3 - fault cost scaling and category breakdown."""

from benchmarks.conftest import run_exhibit
from repro.experiments.fig3 import run_fig3


def test_fig3_fault_cost_breakdown(benchmark, save_render):
    result = run_exhibit(benchmark, run_fig3)
    save_render("fig3_fault_cost_breakdown", result.render())

    small = [r for r in result.rows if r.data_bytes < 100 * 1024]
    assert small, "sweep must include sub-100KB sizes"
    for row in small:
        assert 380 <= row.total_us <= 620  # the 400-600 us floor

    for row in result.rows:
        assert row.share("preprocess") < 0.15  # negligible pre/post

    reg = result.pattern_rows("regular")
    rnd = result.pattern_rows("random")
    assert rnd[-1].total_us >= reg[-1].total_us  # random tends slower
    assert rnd[-1].replay_us >= reg[-1].replay_us  # shifted proportions
