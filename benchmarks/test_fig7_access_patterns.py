"""Bench: regenerate Fig. 7 - all eight workloads' access patterns."""

import numpy as np

from benchmarks.conftest import run_exhibit
from repro.experiments.fig7 import run_fig7
from repro.experiments.runner import ExperimentSetup
from repro.units import MiB


def test_fig7_access_patterns(benchmark, save_render):
    setup = ExperimentSetup().with_gpu(memory_bytes=128 * MiB)
    result = run_exhibit(benchmark, run_fig7, setup=setup, data_fraction=0.125)
    save_render("fig7_access_patterns", result.render())

    assert len(result.panels) == 8

    def corr(name):
        p = result.panel(name).pattern
        pages = p.page_index.astype(np.float64)
        return np.corrcoef(np.arange(pages.size), pages)[0, 1]

    assert corr("regular") > 0.75  # ascending wavefront with jitter
    assert abs(corr("random")) < 0.2  # uniform scatter
    # the triad braids three allocations from the start
    stream = result.panel("stream").pattern
    assert len(stream.range_boundaries) == 3
    # sparse/multigrid panels show their multiple allocations
    assert len(result.panel("cusparse").pattern.range_boundaries) == 6
    assert len(result.panel("hpgmg").pattern.range_boundaries) >= 3
