"""Microbenchmarks: wall-clock throughput of the simulator's hot paths.

These use pytest-benchmark's statistics properly (many rounds) and guard
the simulator's own performance: the density-tree computation, batch
pre-processing, residency updates, and warp-stream advancement are the
inner loops of every experiment.
"""

import numpy as np
import pytest

from repro.core.batch import FaultBatch
from repro.core.prefetch import TreePrefetcher
from repro.core.preprocess import preprocess_batch
from repro.gpu.fault_buffer import FaultEntry
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB


@pytest.fixture
def residency():
    space = AddressSpace()
    space.malloc_managed(64 * MiB)
    return ResidencyState(space)


def test_prefetch_compute_throughput(benchmark):
    pf = TreePrefetcher()
    rng = np.random.default_rng(0)
    resident = rng.random(512) < 0.4
    faults = np.flatnonzero(rng.random(512) < 0.05)
    faults = faults[~resident[faults]][:24]
    if faults.size == 0:
        faults = np.array([int(np.flatnonzero(~resident)[0])])
    result = benchmark(pf.compute, resident, faults)
    assert result.count >= 0


def test_preprocess_batch_throughput(benchmark, residency):
    rng = np.random.default_rng(1)
    entries = [
        FaultEntry(
            page=int(p),
            is_write=bool(p % 2),
            timestamp_ns=0,
            gpc_id=0,
            utlb_id=0,
            stream_id=int(p),
            sm_id=int(p) % 80,
        )
        for p in rng.integers(0, 16384, size=256)
    ]
    batch = FaultBatch(entries=entries)
    result = benchmark(preprocess_batch, batch, residency)
    assert result.n_read == 256


def test_make_resident_throughput(benchmark, residency):
    for vb in range(32):
        residency.back_vablock(vb)
    pages = np.arange(0, 16384, 3, dtype=np.int64)

    def op():
        residency.resident[:] = False
        residency.dirty[:] = False
        residency.resident_count[:] = 0
        return residency.make_resident(pages, writing=True)

    assert benchmark(op) == pages.size


def test_warp_stream_advance_throughput(benchmark):
    rng = np.random.default_rng(2)
    pages = rng.integers(0, 16384, size=100_000).astype(np.int64)
    resident = np.ones(16384, dtype=bool)
    resident[pages[-1]] = False  # one miss at the very end

    def op():
        stream = WarpStream(0, pages)
        return stream.advance(resident)

    missing = benchmark(op)
    assert missing == pages[-1]


def test_eviction_scan_throughput(benchmark, residency):
    for vb in range(32):
        residency.back_vablock(vb)
    residency.make_resident(np.arange(16384, dtype=np.int64), writing=True)

    def op():
        n_res, n_dirty = residency.evict_vablock(5)
        residency.back_vablock(5)
        residency.make_resident(np.arange(5 * 512, 6 * 512, dtype=np.int64), writing=True)
        return n_res

    assert benchmark(op) == 512
