"""Cross-exhibit consistency: the CLI registry matches DESIGN.md's index.

DESIGN.md promises one regeneration target per paper table/figure; this
module keeps the promise testable so the harness cannot silently drop an
exhibit.
"""

from pathlib import Path

import pytest

from repro.cli import _exhibits

REPO = Path(__file__).resolve().parents[2]

#: every evaluation exhibit in the paper (Fig. 2 is the architecture
#: diagram and Fig. 6 the mechanism illustration; both are still covered).
PAPER_EXHIBITS = (
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "table2",
)


class TestRegistryCompleteness:
    def test_every_paper_exhibit_has_a_cli_target(self):
        registry = _exhibits()
        for name in PAPER_EXHIBITS:
            assert name in registry, f"exhibit {name} missing from the CLI"

    def test_every_exhibit_has_a_benchmark(self):
        bench_files = {p.name for p in (REPO / "benchmarks").glob("test_*.py")}
        mapping = {
            "fig1": "test_fig1_access_latency.py",
            "fig3": "test_fig3_fault_cost_breakdown.py",
            "fig4": "test_fig4_service_breakdown.py",
            "fig5": "test_fig5_replay_policy.py",
            "fig6": "test_fig6_density_tree.py",
            "fig7": "test_fig7_access_patterns.py",
            "fig8": "test_fig8_eviction_pattern.py",
            "fig9": "test_fig9_oversubscribed_breakdown.py",
            "fig10": "test_fig10_sgemm_compute_rate.py",
            "table1": "test_table1_fault_reduction.py",
            "table2": "test_table2_sgemm_fault_scaling.py",
        }
        for exhibit, filename in mapping.items():
            assert filename in bench_files, f"{exhibit} lacks benchmark {filename}"

    def test_design_md_indexes_every_exhibit(self):
        design = (REPO / "DESIGN.md").read_text()
        for name in ("Fig. 1", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                     "Fig. 8", "Fig. 9", "Fig. 10", "Table I", "Table II"):
            assert name in design, f"DESIGN.md lost its {name} entry"

    def test_experiments_md_covers_every_exhibit(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for name in ("Fig. 1", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                     "Fig. 8", "Fig. 9", "Fig. 10", "Table I", "Table II"):
            assert name in experiments, f"EXPERIMENTS.md lost its {name} record"

    def test_section_vi_extensions_all_exist(self):
        """The paper's four 'paths forward' plus the driver's thrashing
        and counter-migration mechanisms are all implemented."""
        for module in (
            "access_counter_eviction",
            "adaptive_prefetch",
            "flexible_granularity",
            "origin_prefetch",
            "thrashing",
            "counter_migration",
        ):
            assert (REPO / "src" / "repro" / "ext" / f"{module}.py").exists(), module
