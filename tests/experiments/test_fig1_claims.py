"""Fig. 1's four published observations, asserted against the simulator.

Run at reduced sweep resolution so the suite stays fast; the benchmark
harness regenerates the full figure.
"""

import pytest

from repro.experiments.fig1 import run_fig1
from repro.experiments.runner import ExperimentSetup
from repro.units import MiB


@pytest.fixture(scope="module")
def fig1():
    setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
    return run_fig1(setup, fractions=(0.01, 0.25, 0.9, 1.25))


class TestObservationOne:
    def test_uvm_an_order_of_magnitude_over_explicit(self, fig1):
        """(1) un-prefetched UVM is >= ~10x explicit transfer."""
        for row in fig1.rows:
            if not row.oversubscribed and row.fraction >= 0.25:
                assert row.uvm_slowdown >= 8, (
                    f"{row.pattern}@{row.fraction}: only {row.uvm_slowdown:.1f}x"
                )


class TestObservationTwo:
    def test_prefetch_cuts_cost_but_stays_above_baseline(self, fig1):
        """(2) prefetching helps a lot in-core yet stays several times
        over the explicit baseline."""
        for row in fig1.rows:
            if not row.oversubscribed and row.fraction >= 0.25:
                assert row.uvm_prefetch_us < 0.6 * row.uvm_us
                assert row.prefetch_slowdown > 1.5


class TestObservationThree:
    def test_oversubscription_latency_jump(self, fig1):
        """(3) crossing GPU capacity costs another large factor,
        pattern-dependent (worst for random)."""
        for pattern in ("regular", "random"):
            rows = fig1.pattern_rows(pattern)
            under = next(r for r in rows if r.fraction == 0.9)
            over = next(r for r in rows if r.fraction == 1.25)
            size_ratio = over.data_bytes / under.data_bytes
            jump = (over.uvm_prefetch_us / under.uvm_prefetch_us) / size_ratio
            # random jumps hard (thrash; >4x per byte at deeper ratios,
            # see the bench sweep); regular merely stops improving
            min_jump = 2.5 if pattern == "random" else 1.0
            assert jump > min_jump, f"{pattern}: jump {jump:.2f}"


class TestObservationFour:
    def test_prefetch_aggravates_oversubscribed_transfers(self, fig1):
        """(4) the aggravation mechanism: under oversubscription the
        prefetcher moves far more data than demand paging needs, the
        paper's 504GB-for-32GB phenomenon (Section V-A3).  We assert the
        mechanism (transfer blow-up) rather than the time crossover,
        which in this simulator appears only at deeper ratios - see
        EXPERIMENTS.md."""
        from repro.experiments.runner import simulate
        from repro.workloads.synthetic import RandomAccess

        setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
        data = int(64 * MiB * 1.5)
        with_pf = simulate(RandomAccess(data), setup)
        without = simulate(RandomAccess(data), setup.with_driver(prefetch_enabled=False))
        assert with_pf.dma.h2d_bytes > 2 * without.dma.h2d_bytes


class TestRendering:
    def test_render_produces_table(self, fig1):
        out = fig1.render()
        assert "uvm/explicit" in out
        assert "regular" in out and "random" in out
