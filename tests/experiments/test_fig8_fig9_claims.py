"""Shape claims for Fig. 8 (evict-then-refault) and Fig. 9 (oversubscribed
breakdown)."""

import pytest

from repro.experiments.common import gemm_wave_setup
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.runner import ExperimentSetup
from repro.units import MiB


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(gemm_wave_setup(32), oversubscription=1.35)


@pytest.fixture(scope="module")
def fig9():
    setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
    return run_fig9(setup, ratios=(1.1, 1.5))


class TestFig8:
    def test_oversubscribed_gemm_evicts(self, fig8):
        assert fig8.n_evictions > 0
        assert fig8.oversubscription > 1.1

    def test_evict_then_refault_observed(self, fig8):
        """The worst-case pattern the paper highlights: blocks evicted
        shortly before being paged back in (fault-only LRU blindness)."""
        assert fig8.refaulted_evictions > 0
        assert fig8.refault_fraction > 0.2

    def test_eviction_overlay_aligned(self, fig8):
        assert fig8.pattern.eviction_occurrence.size == fig8.n_evictions
        # eviction indices are positions in the (duplicate-inclusive)
        # fault stream: non-negative and non-decreasing
        occ = fig8.pattern.eviction_occurrence
        assert (occ >= 0).all()
        assert (occ[1:] >= occ[:-1]).all()

    def test_render_shows_evictions(self, fig8):
        out = fig8.render()
        assert "x" in out
        assert "evict-then-refault" in out


class TestFig9:
    def test_random_order_of_magnitude_slower(self, fig9):
        """'Different access patterns show an order of magnitude
        difference in performance.'"""
        # >= 5x at this reduced test scale; the bench sweep at the
        # default 64 MiB device shows >= 10x (see EXPERIMENTS.md)
        assert fig9.slowdown_at(1.5) > 5

    def test_random_amplifies_transfers(self, fig9):
        reg = [r for r in fig9.pattern_rows("regular") if r.ratio == 1.5][0]
        rnd = [r for r in fig9.pattern_rows("random") if r.ratio == 1.5][0]
        assert reg.amplification < 2.0  # streaming moves ~the data once
        assert rnd.amplification > 3.0  # thrash multiplies traffic

    def test_eviction_cost_grows_with_ratio_for_random(self, fig9):
        rows = sorted(fig9.pattern_rows("random"), key=lambda r: r.ratio)
        assert rows[1].evict_us > rows[0].evict_us
        assert rows[1].evictions > rows[0].evictions

    def test_map_dominates_driver_time(self, fig9):
        """Fig. 9 groups migration+mapping as 'Map': the dominant cost."""
        for row in fig9.rows:
            driver_total = row.map_us + row.evict_us + row.other_driver_us
            assert row.map_us > 0.4 * driver_total

    def test_render(self, fig9):
        out = fig9.render()
        assert "bytes moved" in out
