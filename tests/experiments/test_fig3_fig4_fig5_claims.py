"""Shape claims for Figs. 3-5: cost scaling, service split, policies."""

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_policy_comparison
from repro.units import KiB, MiB

SIZES = (16 * KiB, 64 * KiB, 1 * MiB, 16 * MiB)


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(sizes=SIZES)


@pytest.fixture(scope="module")
def fig45():
    return run_policy_comparison(sizes=SIZES)


class TestFig3:
    def test_constant_floor_below_100kb(self, fig3):
        """400-600 us total for sub-100 KB data (Section III-C)."""
        for row in fig3.rows:
            if row.data_bytes < 100 * 1024:
                assert 380 <= row.total_us <= 620, row

    def test_roughly_linear_growth_at_scale(self, fig3):
        rows = fig3.pattern_rows("regular")
        big = next(r for r in rows if r.data_bytes == 16 * MiB)
        mid = next(r for r in rows if r.data_bytes == 1 * MiB)
        growth = big.total_us / mid.total_us
        assert 8 <= growth <= 32  # 16x data -> ~16x time

    def test_preprocess_negligible(self, fig3):
        """'Pre/post processing is shown to be negligible in cost.'"""
        for row in fig3.rows:
            assert row.share("preprocess") < 0.15

    def test_service_dominates_at_scale(self, fig3):
        big = [r for r in fig3.rows if r.data_bytes == 16 * MiB]
        for row in big:
            assert row.share("service") > 0.5

    def test_random_slower_than_regular(self, fig3):
        reg = next(r for r in fig3.pattern_rows("regular") if r.data_bytes == 16 * MiB)
        rnd = next(r for r in fig3.pattern_rows("random") if r.data_bytes == 16 * MiB)
        assert rnd.total_us >= reg.total_us

    def test_replay_cost_material_at_scale(self, fig3):
        big = next(r for r in fig3.pattern_rows("random") if r.data_bytes == 16 * MiB)
        assert big.replay_us > 0.02 * big.total_us


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4(sizes=(16 * KiB, 256 * KiB, 16 * MiB))

    def test_pma_dominates_small_sizes(self, fig4):
        small = fig4.rows[0]
        assert small.pma_share > 0.3

    def test_pma_constant_and_negligible_at_scale(self, fig4):
        """Over-allocation caching: absolute PMA cost stays flat while
        migrate grows; its share collapses (Fig. 4 caption)."""
        small, large = fig4.rows[0], fig4.rows[-1]
        assert large.pma_alloc_us <= 4 * small.pma_alloc_us
        assert large.pma_share < 0.02

    def test_migrate_grows_with_pages(self, fig4):
        assert fig4.rows[-1].migrate_us > 50 * fig4.rows[0].migrate_us


class TestFig5:
    def test_replay_cost_severely_diminished(self, fig45):
        """Batch policy vs batch-flush at the largest size."""
        flush = fig45.batch_flush.rows[-1]
        batch = fig45.batch.rows[-1]
        assert batch.replay_us < 0.5 * flush.replay_us

    def test_preprocessing_increased(self, fig45):
        flush = fig45.batch_flush.rows[-1]
        batch = fig45.batch.rows[-1]
        assert batch.preprocess_us > 1.1 * flush.preprocess_us

    def test_render_includes_both_policies(self, fig45):
        out = fig45.render()
        assert "batch_flush policy" in out
        assert "batch policy" in out
