"""Shape claims for Fig. 6 (prefetch mechanism) and Fig. 7 (patterns)."""

import numpy as np
import pytest

from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.runner import ExperimentSetup
from repro.units import MiB


class TestFig6:
    def test_cascade_doubles_at_pair_completions(self):
        result = run_fig6()
        sizes = [s.region_size for s in result.steps]
        # region choice doubles when sibling halves complete: the last
        # fault adopts the whole block
        assert sizes[-1] == 512
        assert max(sizes) == 512
        assert sizes[0] == 16

    def test_whole_block_eventually_flagged(self):
        result = run_fig6()
        assert result.steps[-1].total_flagged == 512

    def test_threshold_one_needs_single_fault(self):
        result = run_fig6(threshold=1)
        assert result.faults_to_fill == 1

    def test_higher_threshold_needs_more_faults(self):
        low = run_fig6(threshold=25)
        high = run_fig6(threshold=51)
        assert low.faults_to_fill <= high.faults_to_fill

    def test_render(self):
        out = run_fig6().render()
        assert "density-tree cascade" in out
        assert "level 0" in out


@pytest.fixture(scope="module")
def fig7():
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    return run_fig7(
        setup,
        workloads=("regular", "random", "stream", "sgemm"),
        data_fraction=0.25,
    )


class TestFig7:
    def test_regular_is_mostly_ascending(self, fig7):
        """'The GPU scheduler will prefer lower-numbered blocks... but
        there is no fixed ordering.'"""
        pattern = fig7.panel("regular").pattern
        pages = pattern.page_index.astype(np.float64)
        order = np.arange(pages.size)
        corr = np.corrcoef(order, pages)[0, 1]
        assert corr > 0.75
        assert not np.array_equal(pages, np.sort(pages))  # jitter exists

    def test_random_is_uncorrelated(self, fig7):
        pattern = fig7.panel("random").pattern
        pages = pattern.page_index.astype(np.float64)
        corr = np.corrcoef(np.arange(pages.size), pages)[0, 1]
        assert abs(corr) < 0.2

    def test_stream_braids_three_ranges(self, fig7):
        """The triad's dependency interleaves all three vectors
        throughout the run, not one after another."""
        panel = fig7.panel("stream")
        bounds = panel.pattern.range_boundaries
        assert len(bounds) == 3
        pages = panel.pattern.page_index
        third = pages.size // 3
        early = pages[:third]
        # all three ranges already faulting in the first third
        for lo, hi in zip(bounds, bounds[1:] + [pages.max() + 1]):
            assert ((early >= lo) & (early < hi)).any()

    def test_sgemm_covers_three_allocations(self, fig7):
        panel = fig7.panel("sgemm")
        assert panel.pattern.range_names == ["A", "B", "C"]

    def test_unique_fault_per_page_without_prefetch(self, fig7):
        """Prefetch off and undersubscribed: each faulted page unique."""
        for panel in fig7.panels:
            pages = panel.pattern.page_index
            assert np.unique(pages).size == pages.size

    def test_render_panels(self, fig7):
        out = fig7.render()
        assert out.count("Fig.7") == 4
