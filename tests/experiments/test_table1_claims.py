"""Table I shape claims: prefetching's fault reduction across workloads.

The paper's floor is 64% (hpgmg) with random at 97.95%; our simulator's
magnitudes differ (documented in EXPERIMENTS.md) but the structural
claims hold: substantial reduction everywhere, random (near-)maximal and
above regular.
"""

import pytest

from repro.experiments.runner import ExperimentSetup
from repro.experiments.table1 import run_table1
from repro.units import MiB


@pytest.fixture(scope="module")
def table1():
    setup = ExperimentSetup().with_gpu(memory_bytes=128 * MiB)
    return run_table1(setup, data_fraction=0.25)


class TestTableOne:
    def test_all_eight_workloads_present(self, table1):
        assert len(table1.rows) == 8

    def test_substantial_reduction_everywhere(self, table1):
        """Paper: 'at least 64% of faults were eliminated by enabling
        prefetching' - every workload clears a strong floor."""
        for row in table1.rows:
            assert row.reduction_pct >= 60, f"{row.workload}: {row.reduction_pct:.1f}%"

    def test_random_beats_regular(self, table1):
        """Scattered faults saturate VABlock density fastest."""
        assert table1.row("random").reduction_pct > table1.row("regular").reduction_pct

    def test_random_near_maximal(self, table1):
        assert table1.row("random").reduction_pct > 90

    def test_prefetch_strictly_reduces(self, table1):
        for row in table1.rows:
            assert row.faults_with_prefetch < row.total_faults

    def test_render_matches_paper_columns(self, table1):
        out = table1.render()
        assert "total faults" in out
        assert "faults w/ prefetching" in out
        assert "fault reduction (%)" in out
