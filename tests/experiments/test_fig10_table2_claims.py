"""Shape claims for Fig. 10 and Table II: SGEMM across the memory cliff."""

import pytest

from repro.experiments.common import gemm_wave_setup
from repro.experiments.fig10 import run_fig10
from repro.experiments.table2 import run_table2

RATIOS = (0.6, 0.95, 1.15, 1.5, 1.9)


@pytest.fixture(scope="module")
def sweep_setup():
    return gemm_wave_setup(32)


@pytest.fixture(scope="module")
def fig10(sweep_setup):
    return run_fig10(sweep_setup, ratios=RATIOS)


@pytest.fixture(scope="module")
def table2(sweep_setup):
    return run_table2(sweep_setup, ratios=RATIOS)


class TestFig10:
    def test_rate_peaks_near_capacity(self, fig10):
        """Compute rate rises toward the boundary and falls past the
        eviction cliff (paper: 'performance degrades significantly
        after 120%')."""
        peak = fig10.peak_row
        assert 0.8 <= peak.oversubscription <= 1.35

    def test_deep_oversubscription_degrades_hard(self, fig10):
        peak = fig10.peak_row
        deepest = max(fig10.rows, key=lambda r: r.oversubscription)
        assert deepest.gflops < 0.8 * peak.gflops

    def test_no_evictions_before_capacity(self, fig10):
        for row in fig10.rows:
            if row.oversubscription < 0.9:
                assert row.evictions == 0

    def test_render(self, fig10):
        assert "GFLOP/s" in fig10.render()


class TestTableTwo:
    def test_zero_evictions_in_core(self, table2):
        for row in table2.rows:
            if row.oversubscription < 0.9:
                assert row.pages_evicted == 0
                assert row.evictions_per_fault == 0

    def test_pages_evicted_monotone_in_oversubscription(self, table2):
        over = [r for r in table2.rows if r.oversubscription > 1.0]
        values = [r.pages_evicted for r in sorted(over, key=lambda r: r.n)]
        assert values == sorted(values)
        assert values[-1] > 0

    def test_evictions_per_fault_rises_past_cliff(self, table2):
        """The paper's key correlate of degradation: the
        pages-evicted-per-fault column climbs (0 -> 14.1 at their
        scale) as oversubscription deepens."""
        over = sorted(
            (r for r in table2.rows if r.oversubscription > 0.9), key=lambda r: r.n
        )
        assert over[-1].evictions_per_fault > 2 * over[0].evictions_per_fault
        assert over[-1].evictions_per_fault > 1.0

    def test_render_matches_paper_columns(self, table2):
        out = table2.render()
        assert "# Faults" in out
        assert "# Pages Evicted" in out
        assert "# Evictions per Fault" in out
