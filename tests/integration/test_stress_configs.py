"""Integration: hostile configurations the driver must survive.

Tiny fault buffers (drops + refaults), one-block GPUs (eviction on
every allocation), huge batch sizes, degenerate stream shapes, and the
host-fault ping-pong - all must complete with consistent state.
"""

import numpy as np
import pytest

from repro.core.driver import DriverConfig, UvmDriver
from repro.core.replay import ReplayPolicyKind
from repro.experiments.runner import ExperimentSetup, simulate
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess, RegularAccess
from repro.workloads.tealeaf import TealeafWorkload


class TestHostileHardware:
    def test_tiny_fault_buffer_forces_drops_but_completes(self):
        setup = ExperimentSetup().with_gpu(
            memory_bytes=32 * MiB, fault_buffer_capacity=16
        )
        result = simulate(RegularAccess(8 * MiB), setup.with_driver(prefetch_enabled=False))
        assert result.counters["faults.dropped"] > 0
        assert result.faults_serviced == 2048  # nothing lost

    def test_single_vablock_gpu_thrash(self):
        """A 2 MiB device: every new block allocation evicts."""
        space = AddressSpace()
        buf = space.malloc_managed(8 * MiB)
        streams = [
            WarpStream(i, np.array([p], dtype=np.int64))
            for i, p in enumerate(buf.pages())
        ]
        driver = UvmDriver(
            space=space,
            streams=streams,
            gpu_config=GpuDeviceConfig(memory_bytes=2 * MiB),
            driver_config=DriverConfig(prefetch_enabled=False),
            rng=SimRng(0),
        )
        result = driver.run()
        assert result.evictions >= 3
        driver.residency.check_invariants()

    def test_once_policy_under_oversubscription(self):
        setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
        cfg = setup.with_driver(
            replay_policy=ReplayPolicyKind.ONCE, prefetch_enabled=False
        )
        data = int(32 * MiB * 1.2)
        result = simulate(RegularAccess(data), cfg)
        assert result.evictions > 0
        assert result.counters["gpu.accesses"] == -(-data // 4096)

    def test_batch_larger_than_buffer(self):
        setup = ExperimentSetup().with_gpu(
            memory_bytes=32 * MiB, fault_buffer_capacity=128
        )
        result = simulate(
            RegularAccess(4 * MiB), setup.with_driver(batch_size=4096)
        )
        assert result.faults_serviced > 0

    def test_minimal_phase_width(self):
        setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB, phase_width=1)
        result = simulate(RegularAccess(1 * MiB), setup)
        assert result.counters["gpu.accesses"] == 256


class TestDegenerateStreams:
    def test_single_page_workload(self, tiny_setup):
        result = simulate(RegularAccess(4096), tiny_setup)
        assert result.faults_serviced == 1

    def test_stream_revisiting_one_page(self, tiny_setup):
        space = AddressSpace()
        space.malloc_managed(2 * MiB)
        pages = np.zeros(1000, dtype=np.int64)  # same page 1000 times
        driver = UvmDriver(
            space=space,
            streams=[WarpStream(0, pages)],
            gpu_config=tiny_setup.gpu,
            rng=SimRng(0),
        )
        result = driver.run()
        assert result.faults_serviced == 1
        assert result.counters["gpu.accesses"] == 1000


class TestHostPingPongStress:
    def test_tealeaf_host_check_completes_consistently(self):
        setup = ExperimentSetup().with_gpu(memory_bytes=128 * MiB)
        result = simulate(TealeafWorkload(n=512, host_check=True), setup)
        assert result.counters["host.faults"] > 0
        assert result.counters["host.pages_d2h"] > 0

    def test_host_check_raises_fault_count(self):
        setup = ExperimentSetup().with_gpu(memory_bytes=128 * MiB)
        plain = simulate(TealeafWorkload(n=512, host_check=False), setup)
        pingpong = simulate(TealeafWorkload(n=512, host_check=True), setup)
        assert pingpong.faults_read > plain.faults_read
        assert pingpong.total_time_ns > plain.total_time_ns

    def test_oversubscribed_host_check(self):
        """Host migration + eviction interleaved must stay consistent."""
        setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
        result = simulate(TealeafWorkload(n=1088, host_check=True), setup)
        assert result.evictions > 0
        assert result.counters["host.faults"] > 0
