"""Tier-1 perf smoke test for the SoA phase engine.

Guards the vectorized engine's speedup with a generous (2x) wall-clock
budget recorded in ``BENCH_phase_engine.json`` alongside the profiled
baseline numbers.  The budget sits below the scalar reference engine's
measured time for the same workload, so a silent fallback to per-stream
scalar stepping fails this test rather than just slowing CI down.
"""

import json
import time
from pathlib import Path

from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import MiB
from repro.workloads.registry import make_workload

BENCH = json.loads(
    (Path(__file__).resolve().parents[2] / "BENCH_phase_engine.json").read_text()
)


def test_soa_engine_smoke_budget():
    spec = BENCH["smoke_workload"]
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    workload = make_workload(spec["workload"], spec["data_bytes"])

    t0 = time.perf_counter()
    run = simulate(workload, setup)
    wall_s = time.perf_counter() - t0

    # correctness first: the engine must still produce the recorded
    # bit-exact results, otherwise the timing is meaningless
    assert run.total_time_ns == spec["expected"]["total_time_ns"]
    assert run.faults_read == spec["expected"]["faults_read"]

    assert wall_s < spec["budget_seconds"], (
        f"SoA engine took {wall_s:.2f}s, budget {spec['budget_seconds']}s "
        f"(scalar baseline {spec['baseline_scalar_seconds']}s)"
    )
