"""Integration: the chaos determinism matrix.

Headline guarantee of the fault-injection layer: for every injected
failure class - model (simulated-runtime faults), process (worker
kill/hang/slow-start), storage (torn/truncated/stale artifacts) - the
job completes after bounded retries/resume and the stored result is
bit-identical to a fault-free run.  The comparison strips only the
``meta`` envelope (wall-clock timing, worker PID); every simulated
quantity - counters, timers, total simulated nanoseconds, DMA byte
totals - must match exactly.
"""

import os

import pytest

from repro.chaos import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    MODEL_BUFFER_OVERFLOW,
    MODEL_DMA_FAIL,
    MODEL_PMA_FAIL,
    PROCESS_KILL,
    PROCESS_SLOW_START,
    STORAGE_STALE_TMP,
    STORAGE_TORN_JSON,
    STORAGE_TRUNCATED_NPZ,
)
from repro.serve import telemetry as tm
from repro.serve.jobs import JobSpec, JobState
from repro.serve.service import ServiceConfig, SimulationService
from repro.serve.store import ResultStore
from repro.units import MiB

SPEC = dict(workload="stream", data_bytes=6 * MiB, seed=3)
TRACED_SPEC = dict(SPEC, record_trace=True)


def one_fault(point, **kwargs):
    return FaultPlan(seed=17, faults=(FaultSpec(point=point, **kwargs),))


@pytest.fixture
def chaos_env(monkeypatch):
    """Arm a plan for the worker pool; cleared automatically."""

    def arm(plan):
        if plan is None:
            monkeypatch.delenv(ENV_VAR, raising=False)
        else:
            monkeypatch.setenv(ENV_VAR, plan.to_json())

    arm(None)
    return arm


def run_job(tmp_path, name, spec_dict=SPEC, checkpoint_every=2, max_retries=3):
    config = ServiceConfig(
        n_workers=1,
        job_timeout_s=60.0,
        max_retries=max_retries,
        retry_backoff_s=0.05,
        sweep_cache_dir="",  # no memoization: every attempt simulates
        checkpoint_every_phases=checkpoint_every,
    )
    store_dir = str(tmp_path / name)
    with SimulationService(store_dir, config) as svc:
        record = svc.submit(JobSpec(**spec_dict))
        final = svc.wait(record.job_id, timeout=180.0)
        doc = svc.result_doc(final.job_id) if final.state is JobState.DONE else None
        counters = svc.metrics()["counters"]
    return final, doc, counters, store_dir


def payload(doc):
    """The simulated payload: everything except the per-attempt meta."""
    return {k: v for k, v in doc.items() if k != "meta"}


def audit_store(store_dir):
    """No partial/corrupt entry may ever be visible in the store."""
    store = ResultStore(store_dir, sweep_tmp=False)
    for key in store.keys():
        doc = store.get(key)  # raises CorruptResultError on a bad entry
        assert isinstance(doc, dict) and doc
    return store


class TestChaosMatrix:
    """One injected fault per family, each bit-identical to fault-free."""

    MATRIX = [
        ("model_buffer_overflow", one_fault(MODEL_BUFFER_OVERFLOW), 2),
        ("model_dma_fail", one_fault(MODEL_DMA_FAIL), 2),
        ("model_pma_fail", one_fault(MODEL_PMA_FAIL), 2),
        ("process_kill_start", one_fault(PROCESS_KILL, args={"at": "start"}), 2),
        (
            "process_slow_start",
            one_fault(PROCESS_SLOW_START, args={"delay_s": 0.05}),
            1,
        ),
        ("storage_torn_json", one_fault(STORAGE_TORN_JSON), 2),
        ("storage_stale_tmp", one_fault(STORAGE_STALE_TMP), 1),
    ]

    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        os.environ.pop(ENV_VAR, None)
        final, doc, _, _ = run_job(tmp_path_factory.mktemp("clean"), "clean")
        assert final.state is JobState.DONE and final.attempts == 1
        return doc

    @pytest.mark.parametrize(
        "name, plan, expect_attempts", MATRIX, ids=[m[0] for m in MATRIX]
    )
    def test_injected_run_bit_identical(
        self, tmp_path, chaos_env, baseline, name, plan, expect_attempts
    ):
        chaos_env(plan)
        final, doc, counters, store_dir = run_job(tmp_path, name)
        assert final.state is JobState.DONE, final.error
        assert final.attempts == expect_attempts
        assert payload(doc) == payload(baseline)
        audit_store(store_dir)

    def test_truncated_npz_fault(self, tmp_path, chaos_env):
        """The npz family needs a traced job; the trace must round-trip
        intact on the clean retry."""
        chaos_env(None)
        clean_final, clean_doc, _, clean_store = run_job(
            tmp_path, "clean-traced", TRACED_SPEC
        )
        assert clean_final.state is JobState.DONE

        chaos_env(one_fault(STORAGE_TRUNCATED_NPZ))
        final, doc, counters, store_dir = run_job(tmp_path, "trunc", TRACED_SPEC)
        assert final.state is JobState.DONE and final.attempts == 2
        assert payload(doc) == payload(clean_doc)
        assert counters[tm.CHAOS_INJECTIONS] == 1

        injected = audit_store(store_dir)
        clean = ResultStore(clean_store, sweep_tmp=False)
        a = injected.load_result_trace(doc["meta"]["key"])
        b = clean.load_result_trace(clean_doc["meta"]["key"])
        assert a is not None and b is not None
        assert a.fault_page.tolist() == b.fault_page.tolist()

    def test_chaos_attempts_visible_in_telemetry(self, tmp_path, chaos_env):
        chaos_env(one_fault(MODEL_DMA_FAIL, attempts=2))
        final, _, counters, _ = run_job(tmp_path, "telemetry")
        assert final.state is JobState.DONE and final.attempts == 3
        assert counters[tm.CHAOS_INJECTIONS] == 2
        assert counters[tm.JOBS_RETRIED] == 2

    def test_exhausted_retries_fail_cleanly(self, tmp_path, chaos_env):
        """More chaos attempts than retries: the job FAILs, the store
        stays clean, the service stays alive."""
        chaos_env(one_fault(MODEL_DMA_FAIL, attempts=10))
        final, doc, _, store_dir = run_job(tmp_path, "exhaust", max_retries=1)
        assert final.state is JobState.FAILED
        assert doc is None
        assert len(list(ResultStore(store_dir, sweep_tmp=False).keys())) == 0


class TestCheckpointCrashRecovery:
    """SIGKILL the worker at successive checkpoint boundaries: every
    crash point must resume and land on the bit-identical result."""

    @pytest.mark.parametrize("after_saves", [1, 2, 3])
    def test_kill_at_each_checkpoint(self, tmp_path, chaos_env, after_saves):
        chaos_env(None)
        clean_final, clean_doc, _, _ = run_job(tmp_path, "clean")
        assert clean_final.state is JobState.DONE

        chaos_env(
            one_fault(
                PROCESS_KILL, args={"at": "checkpoint", "after_saves": after_saves}
            )
        )
        final, doc, counters, store_dir = run_job(
            tmp_path, f"kill-{after_saves}", checkpoint_every=1
        )
        assert final.state is JobState.DONE, final.error
        assert final.attempts == 2
        assert counters[tm.WORKER_DEATHS] == 1
        assert payload(doc) == payload(clean_doc)
        audit_store(store_dir)
        # the successful attempt cleared its checkpoint
        assert list((ResultStore(store_dir, sweep_tmp=False).root / "checkpoints").glob("*.ckpt")) == []

    def test_resume_actually_used(self, tmp_path, chaos_env):
        """A kill after the first checkpoint must produce a resumed
        attempt (visible in telemetry), not a from-scratch rerun."""
        chaos_env(one_fault(PROCESS_KILL, args={"at": "checkpoint", "after_saves": 1}))
        final, _, counters, _ = run_job(tmp_path, "resume", checkpoint_every=1)
        assert final.state is JobState.DONE
        assert counters[tm.JOBS_RESUMED] == 1


class TestSweepCheckpointRecovery:
    """The run_sweep path: an interrupted point resumes from its
    checkpoint on the next sweep invocation and matches a clean sweep."""

    def test_interrupted_sweep_point_resumes(self, tmp_path):
        from repro.experiments.runner import (
            ExperimentSetup,
            checkpoint_path,
            run_sweep,
            simulate,
            sweep_cache_key,
        )
        from repro.sim.engine import SimulationCheckpointer
        from repro.workloads.stream_triad import StreamTriadWorkload

        workload = StreamTriadWorkload(total_bytes=3 * MiB)
        setup = ExperimentSetup()
        baseline = simulate(workload, setup)
        cache_dir = str(tmp_path / "sweep-cache")

        # simulate a crashed sweep: a half-finished checkpoint on disk
        class _Crash(Exception):
            pass

        def crash(_saves):
            raise _Crash

        key = sweep_cache_key(workload, setup, False)
        ck = SimulationCheckpointer(
            checkpoint_path(cache_dir, key), every_phases=2, on_save=crash
        )
        from repro.experiments.runner import build_driver

        with pytest.raises(_Crash):
            build_driver(workload, setup).run(ck)
        assert ck.exists()

        results = run_sweep(
            [workload], setup, workers=1, cache_dir=cache_dir, cache=True
        )
        assert results[0].total_time_ns == baseline.total_time_ns
        assert results[0].counters.as_dict() == baseline.counters.as_dict()
        assert not ck.exists()  # consumed and cleared by the sweep
