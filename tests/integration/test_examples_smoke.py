"""Smoke tests: the fast example scripts run end to end.

Examples are user-facing API documentation; a broken one is a broken
doc. The slow sweep examples are exercised by the benchmark suite
instead (they regenerate the same exhibits).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "prefetch_tree_demo.py",
    "memadvise_hints.py",
    "replay_policy_comparison.py",
    "driver_anatomy.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_reports_the_paper_quantities():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = proc.stdout
    assert "driver time by category" in out
    assert "fault reduction from prefetching" in out
    assert "prefetching speedup" in out


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(('"""', "#!")), script.name
        assert "Run:" in text, f"{script.name} lacks a Run: line"
