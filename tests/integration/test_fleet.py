"""Integration: a real 3-shard fleet behind the gateway, with chaos.

Acceptance criteria covered here:

* 60 mixed jobs submitted through an unmodified
  :class:`~repro.serve.client.ServiceClient` pointed at the gateway URL
  all complete while one shard is SIGKILLed mid-run by the
  ``process.shard_kill`` chaos fault (no accepted job lost),
* every result - including re-routed/recomputed ones - is bit-identical
  to a solo in-process run of the same spec,
* the gateway's ``/metrics`` aggregate equals the sum of the live
  shards' own counters, with the gateway's ``fleet.*`` counters merged
  alongside.

The shards are real ``uvmrepro serve`` subprocesses (own journals,
stores, worker pools) running under ``UVMREPRO_SANITIZE=1``; only the
gateway runs in-process so its state machine can be inspected.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServiceClient
from repro.serve.jobs import JobSpec
from repro.units import MiB

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: 20 unique tiny specs x 3 repeats = 60 jobs, mixed across workloads.
_WORKLOADS = ("stream", "random")
_UNIQUE = 20
_REPEATS = 3


def _specs() -> list[dict]:
    unique = [
        {
            "workload": _WORKLOADS[i % len(_WORKLOADS)],
            "data_bytes": 1 * MiB,
            "seed": 1000 + i,
            "gpu": {"memory_bytes": 4 * MiB},
        }
        for i in range(_UNIQUE)
    ]
    return unique * _REPEATS


def _start_shard(tmp_path, name: str, chaos: dict | None) -> tuple:
    """One ``uvmrepro serve`` subprocess; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), _SRC) if p
    )
    env["UVMREPRO_SANITIZE"] = "1"
    env.pop("UVMREPRO_CHAOS", None)
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--workers",
        "1",
        "--store-dir",
        str(tmp_path / name),
        "--shard-name",
        name,
        "--sweep-cache",
        "",
        "--max-retries",
        "2",
    ]
    if chaos is not None:
        argv += ["--chaos", json.dumps(chaos)]
    proc = subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        bufsize=1,
    )
    url = None
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "uvmrepro service on " in line:
            url = line.split("uvmrepro service on ", 1)[1].split()[0]
            break
    if url is None:
        proc.kill()
        raise AssertionError(f"shard {name} never announced its URL")
    return proc, url


def _drain_pipe(proc):
    """Close the pipe so a killed child can't block on a full buffer."""
    try:
        proc.stdout.close()
    except Exception:
        pass


@pytest.fixture
def fleet(tmp_path):
    """3 shard subprocesses + an in-process gateway; shard1 is doomed."""
    from repro.fleet import FleetGateway, GatewayConfig, ShardSpec

    chaos = {
        "seed": 11,
        "faults": [
            {
                "point": "process.shard_kill",
                "args": {"shard": "shard1", "after_records": 12},
            }
        ],
    }
    procs, urls = {}, {}
    try:
        for name in ("shard0", "shard1", "shard2"):
            procs[name], urls[name] = _start_shard(tmp_path, name, chaos)
        config = GatewayConfig(
            shards=tuple(
                ShardSpec(name, urls[name]) for name in sorted(urls)
            ),
            vnodes=64,
            probe_interval_s=0.1,
            down_after_probes=2,
            recover_after_probes=1,
            connect_timeout_s=2.0,
            read_timeout_s=60.0,
            shed_retry_after_s=0.1,
        )
        gateway = FleetGateway(config).start()
        try:
            yield gateway, procs
        finally:
            gateway.stop()
    finally:
        for proc in procs.values():
            _drain_pipe(proc)
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)


def _solo_doc(payload: dict) -> dict:
    """The same spec computed solo, serialized with the worker's schema."""
    from repro.experiments.runner import simulate
    from repro.serve.results import result_to_doc

    spec = JobSpec.from_dict(payload)
    workload, setup = spec.build()
    return result_to_doc(simulate(workload, setup))


def _stable(doc: dict) -> dict:
    """The deterministic part of a result document (``meta`` carries
    job ids, worker pids, and wall time - all run-specific)."""
    return {k: v for k, v in doc.items() if k != "meta"}


class TestFleetUnderShardLoss:
    def test_sixty_jobs_survive_losing_a_shard_mid_run(self, fleet, tmp_path):
        from repro.fleet import serve_gateway_http

        gateway, procs = fleet
        server = serve_gateway_http(gateway, "127.0.0.1", 0)
        try:
            client = ServiceClient(
                server.url, timeout_s=60.0, retries=3, backoff_budget_s=30.0
            )
            submitted = []
            for payload in _specs():
                record = client.submit(payload)
                assert record["state"] in ("queued", "running", "done")
                submitted.append((record["job_id"], payload))
            assert len(submitted) == 60

            finals = {}
            for job_id, payload in submitted:
                final = client.wait(job_id, timeout_s=600.0, poll_s=0.05)
                assert final["state"] == "done", (
                    f"{job_id} ended {final['state']}: {final.get('error')}"
                )
                finals[job_id] = (payload, client.result(job_id))

            # the chaos fault really killed shard1 (SIGKILL, not drain)
            deadline = time.time() + 30
            while procs["shard1"].poll() is None and time.time() < deadline:
                time.sleep(0.1)
            assert procs["shard1"].poll() == -signal.SIGKILL
            assert gateway.telemetry.counter("fleet.shard_down") >= 1

            # bit-identical results: repeats of one spec agree with each
            # other AND with a solo in-process run (sample 3 unique
            # specs, preferring ones that lived on the doomed shard)
            by_key = {}
            for job_id, (payload, doc) in finals.items():
                key = JobSpec.from_dict(payload).spec_digest()
                by_key.setdefault(key, []).append((payload, doc))
            for key, group in by_key.items():
                first = _stable(group[0][1])
                for _, doc in group[1:]:
                    assert _stable(doc) == first, f"repeat mismatch for {key}"
            rerouted = [
                entry
                for entry in gateway._jobs.values()
                if entry.failovers > 0
            ]
            sample_keys = {e.key for e in rerouted}
            sample_keys.update(list(by_key)[:3])
            for key in list(sample_keys)[:3]:
                payload, doc = by_key[key][0]
                assert _stable(doc) == _stable(_solo_doc(payload)), (
                    f"fleet result for {key} diverged from the solo run"
                )

            # metrics aggregate == sum of the shard docs in the same
            # payload (the dead shard contributes None and is excluded)
            metrics = client.metrics()
            shard_docs = {
                name: meta["metrics"]
                for name, meta in metrics["fleet"]["shards"].items()
            }
            assert shard_docs["shard1"] is None  # dead: unreachable
            live = [doc for doc in shard_docs.values() if doc is not None]
            names = set()
            for doc in live:
                names.update(doc["counters"])
            for name in names:
                assert metrics["counters"][name] == sum(
                    doc["counters"].get(name, 0) for doc in live
                ), f"aggregate mismatch for counter {name}"
            assert metrics["counters"]["fleet.jobs_routed"] == 60
            assert metrics["counters"]["fleet.shard_down"] >= 1
            assert metrics["gauges"]["shards_down"] >= 1

            # every job the fleet accepted is accounted for in the
            # gateway's table - none vanished with the dead shard
            listing = client.list_jobs()
            assert len(listing) == 60
            assert all(j["state"] == "done" for j in listing)
        finally:
            server.shutdown()
            server.server_close()
