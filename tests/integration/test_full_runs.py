"""Integration: every paper workload runs to completion with invariants.

These are the suite's end-to-end checks: build each workload against a
real address space, run the full driver pipeline, and verify global
consistency afterwards - every access retired, residency/page-table
agreement, conservation of migrated pages, and counter coherence.
"""

import numpy as np
import pytest

from repro.core.driver import UvmDriver
from repro.experiments.runner import ExperimentSetup, simulate
from repro.sim.rng import SimRng
from repro.units import MiB
from repro.workloads.registry import make_workload, workload_names

DATA_MIB = 8  # small and fast; undersubscribed on the 64 MiB fixture GPU


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkloadCompletes:
    def _run_driver(self, name, setup):
        rng = SimRng(setup.seed)
        space = setup.make_space()
        build = make_workload(name, DATA_MIB * MiB).build(space, rng.fork("workload"))
        driver = UvmDriver(
            space=space,
            streams=build.streams if build.phases is None else None,
            phases=build.phases,
            driver_config=setup.driver,
            gpu_config=setup.gpu,
            cost=setup.cost,
            rng=rng,
        )
        result = driver.run()
        return driver, build, result

    def test_all_accesses_retired(self, name, small_setup):
        driver, build, result = self._run_driver(name, small_setup)
        assert driver.device.kernel_finished()
        assert result.counters["gpu.accesses"] == build.total_accesses

    def test_state_consistency_after_run(self, name, small_setup):
        driver, _, _ = self._run_driver(name, small_setup)
        driver.residency.check_invariants()
        driver.gpu_table.check_against_residency(driver.residency.resident)
        # host and gpu tables partition the space exactly
        assert not (driver.gpu_table.mapped & driver.host_table.mapped).any()
        assert (driver.gpu_table.mapped | driver.host_table.mapped).all()

    def test_every_touched_page_was_migrated(self, name, small_setup):
        """Undersubscribed: H2D migrations are conserved - every
        migrated page is either still resident or was moved back by a
        host fault (and counted as such); no eviction churn."""
        driver, build, result = self._run_driver(name, small_setup)
        touched = np.unique(np.concatenate([s.pages for s in build.streams]))
        assert driver.residency.resident[touched].all()
        assert result.evictions == 0
        migrated = (
            result.counters["pages.demand_h2d"] + result.counters["pages.prefetch_h2d"]
        )
        resident_total = driver.residency.total_resident_pages()
        host_back = result.counters["host.pages_d2h"]
        assert migrated == resident_total + host_back

    def test_counter_coherence(self, name, small_setup):
        _, _, result = self._run_driver(name, small_setup)
        c = result.counters
        assert c["faults.read"] == c["faults.serviced"] + c["faults.duplicate"]
        assert c["faults.read"] <= c["faults.enqueued"]
        assert result.total_time_ns == result.breakdown().total_ns


class TestDmaAccounting:
    def test_bytes_match_page_counters(self, small_setup):
        result = simulate(make_workload("regular", DATA_MIB * MiB), small_setup)
        pages_h2d = (
            result.counters["pages.demand_h2d"] + result.counters["pages.prefetch_h2d"]
        )
        assert result.dma.h2d_bytes == pages_h2d * 4096
        assert result.dma.d2h_bytes == result.counters["pages.writeback_d2h"] * 4096
