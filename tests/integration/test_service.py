"""Integration: the job service under concurrent load, over real HTTP.

Acceptance criteria covered here:

* a local service accepts >= 100 concurrent submissions across >= 3
  workloads and completes all of them,
* re-submitting the same specs is served from the result store with
  zero new simulations (the store cache-hit counter equals the
  resubmitted job count),
* priorities, cancellation, result documents, and the event stream
  behave as documented.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.client import ServiceClient, ServiceClientError
from repro.serve.http_api import serve_http
from repro.serve.service import ServiceConfig, SimulationService
from repro.units import MiB

WORKLOADS = ["random", "stream", "sgemm", "regular"]


def make_specs(n):
    """n distinct tiny specs across >= 3 workloads."""
    specs = []
    for i in range(n):
        specs.append(
            {
                "workload": WORKLOADS[i % len(WORKLOADS)],
                "data_bytes": (2 + (i // len(WORKLOADS)) % 3) * MiB,
                "seed": 1000 + i // (len(WORKLOADS) * 3),
                "gpu": {"memory_bytes": 16 * MiB},
            }
        )
    return specs


@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(
        n_workers=2,
        job_timeout_s=120.0,
        sweep_cache_dir=str(tmp_path / "sweep-cache"),
    )
    with SimulationService(str(tmp_path / "store"), config) as svc:
        server = serve_http(svc)
        try:
            yield svc, ServiceClient(server.url, timeout_s=60.0)
        finally:
            server.shutdown()


class TestConcurrentLoad:
    N_JOBS = 104

    def test_hundred_concurrent_jobs_then_free_resubmission(self, service):
        svc, client = service
        specs = make_specs(self.N_JOBS)
        assert len({s["workload"] for s in specs}) >= 3

        # -- wave 1: concurrent submission over HTTP ------------------------
        with ThreadPoolExecutor(max_workers=16) as pool:
            records = list(pool.map(client.submit, specs))
        assert len(records) == self.N_JOBS
        finals = [client.wait(r["job_id"], timeout_s=600.0) for r in records]
        assert all(r["state"] == "done" for r in finals)

        metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["jobs.submitted"] == self.N_JOBS
        assert counters["jobs.completed"] == self.N_JOBS
        simulations_after_wave1 = counters["simulations.run"] + counters.get(
            "cache.hits.sweep", 0
        )
        assert simulations_after_wave1 == self.N_JOBS
        assert counters.get("cache.hits.store", 0) == 0
        assert metrics["gauges"]["queue_depth"] == 0
        assert metrics["gauges"]["jobs_in_flight"] == 0

        # every job has a result document with real content
        doc = client.result(finals[0]["job_id"])
        assert doc["total_time_ns"] > 0
        assert doc["counters"]["faults.read"] > 0

        # -- wave 2: identical resubmission is served from the store --------
        with ThreadPoolExecutor(max_workers=16) as pool:
            resubmitted = list(pool.map(client.submit, specs))
        assert all(r["state"] == "done" for r in resubmitted)
        assert all(r["cache_hit"] for r in resubmitted)

        counters = client.metrics()["counters"]
        # the acceptance criterion: cache-hit counter == resubmitted count,
        # and zero new simulations ran in wave 2.
        assert counters["cache.hits.store"] == self.N_JOBS
        assert (
            counters["simulations.run"] + counters.get("cache.hits.sweep", 0)
            == simulations_after_wave1
        )
        assert counters["jobs.completed"] == 2 * self.N_JOBS

    def test_latency_metrics_populated(self, service):
        svc, client = service
        for spec in make_specs(4):
            client.wait(client.submit(spec)["job_id"], timeout_s=120.0)
        latency = client.metrics()["job_latency"]
        assert latency["n"] >= 4
        assert latency["p95_us"] >= latency["p50_us"] >= 0.0


class TestServiceSemantics:
    def test_result_404_until_done(self, service):
        svc, client = service
        record = client.submit(make_specs(1)[0])
        client.wait(record["job_id"], timeout_s=120.0)
        assert client.result(record["job_id"])["total_time_ns"] > 0
        with pytest.raises(ServiceClientError) as excinfo:
            client.result("job-99999999")
        assert excinfo.value.status == 404

    def test_invalid_spec_rejected_with_400(self, service):
        svc, client = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"workload": "linpack", "data_bytes": MiB})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"workload": "random", "data_bytes": -1})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"workload": "random", "data_bytes": MiB, "bogus": 1})
        assert excinfo.value.status == 400

    def test_event_stream_is_incremental(self, service):
        svc, client = service
        spec = make_specs(1)[0]
        record = client.submit(spec)
        client.wait(record["job_id"], timeout_s=120.0)
        stream = client.events(since=0)
        states = [
            e["state"] for e in stream["events"] if e["job_id"] == record["job_id"]
        ]
        assert states[0] == "queued"
        assert states[-1] == "done"
        # the cursor advances and excludes already-seen events
        follow_up = client.events(since=stream["next_since"])
        assert follow_up["events"] == []

    def test_sweep_cache_shared_with_run_sweep(self, service, tmp_path):
        """A point computed by run_sweep is a sweep-cache hit for the service."""
        from repro.experiments.runner import run_sweep
        from repro.serve.jobs import JobSpec

        svc, client = service
        spec = JobSpec(
            workload="random",
            data_bytes=5 * MiB,
            seed=77,
            gpu={"memory_bytes": 16 * MiB},
        )
        workload, setup = spec.build()
        run_sweep(
            [(workload, setup)],
            workers=1,
            cache_dir=svc.pool.cache_dir,
        )
        record = client.submit(spec.to_dict())
        final = client.wait(record["job_id"], timeout_s=120.0)
        assert final["state"] == "done"
        assert client.metrics()["counters"].get("cache.hits.sweep", 0) >= 1
