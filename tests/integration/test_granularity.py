"""Integration: the full stack under non-default VABlock granularity."""

from dataclasses import replace

import pytest

from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import KiB, MiB
from repro.workloads.registry import make_workload
from repro.workloads.synthetic import RandomAccess


def setup_with_granule(granule: int) -> ExperimentSetup:
    base = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
    return replace(base, vablock_bytes=granule)


class TestFlexibleGranularity:
    @pytest.mark.parametrize("granule", [256 * KiB, 512 * KiB, 1 * MiB])
    def test_runs_complete_under_small_granules(self, granule):
        result = simulate(RandomAccess(8 * MiB), setup_with_granule(granule))
        assert result.faults_serviced > 0
        assert result.counters["gpu.accesses"] == 2048

    def test_prefetch_tree_adapts_to_granule(self):
        """With a 256 KiB granule the tree has 64 leaves; threshold-1
        prefetching fetches whole (smaller) blocks."""
        cfg = setup_with_granule(256 * KiB).with_driver(density_threshold=1)
        result = simulate(RandomAccess(4 * MiB), cfg)
        # 4 MiB = 16 granules of 64 pages; far fewer faults than pages
        # (bounded by the faults already in flight before prefetch lands)
        assert result.faults_read <= 1024 / 2

    def test_smaller_granule_tames_random_thrash(self):
        """Section VI-B's hypothesis: finer allocation granularity
        reduces eviction traffic for irregular oversubscribed access
        (visible once the coarse configuration actually thrashes)."""
        from repro.experiments.runner import ExperimentSetup

        base = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
        data = int(64 * MiB * 1.25)
        coarse = simulate(RandomAccess(data), replace(base, vablock_bytes=2 * MiB))
        fine = simulate(RandomAccess(data), replace(base, vablock_bytes=512 * KiB))
        assert fine.dma.total_bytes < coarse.dma.total_bytes
        assert fine.total_time_ns < coarse.total_time_ns

    def test_structured_workload_under_fine_granule(self):
        result = simulate(
            make_workload("stream", 8 * MiB), setup_with_granule(512 * KiB)
        )
        assert result.counters["gpu.accesses"] > 0
        result.timer.breakdown(("preprocess", "service", "replay_policy"))
