"""Integration: the three UVM access behaviours end to end."""

import numpy as np
import pytest

from repro.core.driver import DriverConfig, UvmDriver
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.advise import MemAdvise
from repro.sim.rng import SimRng
from repro.units import MiB
from repro.workloads.base import HostAccess, KernelPhase


def run_touch(advise=None, writes_frac=0.0, data_mib=8, gpu_mib=32, phases=None):
    space = AddressSpace()
    buf = space.malloc_managed(data_mib * MiB, name="data")
    if advise is not None:
        space.mem_advise("data", advise)
    if phases is None:
        pages = buf.pages()
        writes = np.zeros(len(pages), dtype=bool)
        writes[: int(len(pages) * writes_frac)] = True
        streams = [
            WarpStream(i, np.array([p]), np.array([w]))
            for i, (p, w) in enumerate(zip(pages, writes))
        ]
        driver = UvmDriver(
            space=space,
            streams=streams,
            gpu_config=GpuDeviceConfig(memory_bytes=gpu_mib * MiB),
            rng=SimRng(1),
        )
    else:
        driver = UvmDriver(
            space=space,
            phases=phases(buf),
            gpu_config=GpuDeviceConfig(memory_bytes=gpu_mib * MiB),
            rng=SimRng(1),
        )
    return driver, driver.run()


class TestPinnedHost:
    def test_zero_copy_moves_no_data(self):
        driver, result = run_touch(MemAdvise.PINNED_HOST)
        assert result.dma.h2d_bytes == 0
        assert result.counters["remote.pages_mapped"] == 2048
        assert result.counters["remote.accesses"] == 2048
        assert result.evictions == 0
        driver.residency.check_invariants()

    def test_no_gpu_memory_consumed(self):
        driver, result = run_touch(MemAdvise.PINNED_HOST)
        assert driver.pma.used_bytes == 0
        assert driver.residency.total_resident_pages() == 0

    def test_remote_access_time_charged(self):
        _, result = run_touch(MemAdvise.PINNED_HOST)
        assert result.timer.total_ns("gpu.remote_access") > 0

    def test_remote_larger_than_gpu_memory(self):
        """Zero-copy sidesteps oversubscription entirely: data larger
        than GPU memory runs without a single eviction."""
        driver, result = run_touch(MemAdvise.PINNED_HOST, data_mib=48, gpu_mib=32)
        assert result.evictions == 0
        assert result.counters["remote.pages_mapped"] == 48 * 256


class TestReadMostly:
    def test_reads_duplicate_host_stays_mapped(self):
        driver, result = run_touch(MemAdvise.READ_MOSTLY, writes_frac=0.0)
        assert driver.residency.duplicated.sum() == 2048
        assert driver.host_table.mapped[:2048].all()  # host copies valid
        assert driver.gpu_table.mapped[:2048].all()
        driver.residency.check_invariants()

    def test_writes_collapse_duplicates(self):
        driver, result = run_touch(MemAdvise.READ_MOSTLY, writes_frac=0.25)
        upgrades = result.counters["faults.write_upgrade"]
        assert upgrades > 0  # prefetched read-only copies hit by writers
        written = int(driver.residency.writable.sum())
        assert written == 512
        assert not driver.host_table.mapped[:512].any()  # exclusives unmapped
        driver.residency.check_invariants()

    def test_host_reads_of_duplicates_are_free(self):
        def phases(buf):
            pages = buf.pages()
            k1 = [WarpStream(i, np.array([p])) for i, p in enumerate(pages)]
            k2 = [
                WarpStream(10_000 + i, np.array([p])) for i, p in enumerate(pages)
            ]
            return [
                KernelPhase(streams=k1),
                KernelPhase(
                    streams=k2, host_before=HostAccess(pages=pages, writes=False)
                ),
            ]

        driver, result = run_touch(MemAdvise.READ_MOSTLY, phases=phases)
        # host read of duplicated data: no CPU faults, no migration back
        assert result.counters["host.faults"] == 0
        assert result.counters["host.pages_d2h"] == 0
        # and the second kernel re-reads without any new GPU faults
        assert driver.residency.duplicated.sum() == 2048

    def test_host_writes_invalidate_gpu_copies(self):
        def phases(buf):
            pages = buf.pages()
            k1 = [WarpStream(i, np.array([p])) for i, p in enumerate(pages)]
            k2 = [
                WarpStream(10_000 + i, np.array([p])) for i, p in enumerate(pages)
            ]
            return [
                KernelPhase(streams=k1),
                KernelPhase(
                    streams=k2,
                    host_before=HostAccess(pages=pages[:512], writes=True),
                ),
            ]

        driver, result = run_touch(MemAdvise.READ_MOSTLY, phases=phases)
        assert result.counters["dup.host_invalidations"] == 512
        assert result.dma.d2h_bytes == 0  # clean copies: no data moved
        # the invalidated pages were migrated to the GPU a second time
        migrated = (
            result.counters["pages.demand_h2d"] + result.counters["pages.prefetch_h2d"]
        )
        assert migrated >= 2048 + 512
        driver.residency.check_invariants()


class TestMixedAdvise:
    def test_ranges_with_different_advises_coexist(self):
        space = AddressSpace()
        a = space.malloc_managed(4 * MiB, name="migrate")
        b = space.malloc_managed(4 * MiB, name="pinned")
        space.mem_advise("pinned", MemAdvise.PINNED_HOST)
        streams = [
            WarpStream(i, np.array([p]))
            for i, p in enumerate(np.concatenate([a.pages(), b.pages()]))
        ]
        driver = UvmDriver(
            space=space,
            streams=streams,
            gpu_config=GpuDeviceConfig(memory_bytes=32 * MiB),
            rng=SimRng(1),
        )
        result = driver.run()
        assert result.counters["remote.pages_mapped"] == 1024
        assert driver.residency.resident[a.pages()].all()
        assert driver.residency.remote_mapped[b.pages()].all()
        driver.residency.check_invariants()
