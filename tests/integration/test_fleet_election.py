"""Integration: self-healing gateways - lease expiry, promotion, demotion.

Two tiers:

* **always on** - a real follower gateway tails a real primary over
  HTTP; when the primary dies the follower's lease expires, it promotes
  itself past the reserved epoch bound, starts accepting membership
  mutations, and its election audit records the transition.
* **UVMREPRO_SLOW_TESTS=1** - the full partition-election acceptance
  scenario: 3 shards + a primary/follower gateway pair, 60 mixed jobs,
  a fourth shard joining mid-run, ``network.partition`` isolating the
  primary mid arc-migration (armed off its membership journal's append
  count), the follower promoting within the lease TTL and finishing the
  migration, the healed ex-primary demoting on the first higher-epoch
  view - with every job bit-identical to solo simulation and the merged
  election audits proving exactly one acting primary minted any epoch.
  The merged audit is written out as a CI artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServiceClient
from repro.serve.jobs import JobSpec

from tests.integration.test_fleet_elastic import (
    SLOW_TIER,
    _await_banner,
    _child_env,
    _quarantined,
    _reap,
    _solo_doc,
    _specs,
    _stable,
    _start_shard,
    _wait_member_state,
)

#: must match the subprocess gateways' --vnodes (the CLI default).
VNODES = 64
LEASE_TTL = 2.0


def _start_gateway(
    name: str,
    shard_urls: list[str] | None = None,
    journal: str | None = None,
    follow: str | None = None,
    chaos: dict | None = None,
) -> tuple:
    argv = [
        sys.executable, "-m", "repro.cli", "gateway",
        "--host", "127.0.0.1", "--port", "0",
        "--gateway-name", name,
        "--probe-interval", "0.1",
        "--down-after", "2",
        "--recover-after", "1",
        "--probation-probes", "2",
        "--lease-ttl", str(LEASE_TTL),
        "--election-probes", "2",
    ]
    if shard_urls:
        argv += ["--shards", *shard_urls]
    if journal:
        argv += ["--membership-journal", journal]
    if follow:
        argv += ["--follow", follow]
    proc = subprocess.Popen(
        argv, env=_child_env(chaos), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, bufsize=1,
    )
    return proc, _await_banner(proc, "uvmrepro gateway on ", f"gateway {name}")


def _wait_role(client: ServiceClient, role: str, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            last, _ = client.request_with_budget("GET", "/fleet/elections")
        except Exception:
            time.sleep(0.2)
            continue
        if last.get("role") == role:
            return last
        time.sleep(0.2)
    raise AssertionError(f"never reached role {role!r}; last audit: {last}")


def _assert_one_primary_per_epoch(audits: dict[str, dict]) -> None:
    owners: dict[int, str] = {}
    for name, audit in audits.items():
        for lo, hi in audit["minted"]:
            for epoch in range(lo, hi + 1):
                assert epoch not in owners, (
                    f"epoch {epoch} minted by both {owners[epoch]} and {name}"
                )
                owners[epoch] = name


class TestLeaseFailover:
    def test_follower_promotes_when_primary_dies(self, tmp_path):
        """In-process primary + follower over real HTTP: kill the
        primary, watch the follower's lease run out and its role flip."""
        from repro.fleet import FleetGateway, GatewayConfig, Role
        from repro.fleet import serve_gateway_http

        primary = FleetGateway(
            GatewayConfig(
                shards=(),
                gateway_name="gw0",
                membership_journal=str(tmp_path / "gw0.journal"),
                probe_interval_s=0.1,
                lease_ttl_s=1.0,
                election_probes=2,
            )
        ).start()
        server = serve_gateway_http(primary, "127.0.0.1", 0)
        follower = None
        try:
            follower = FleetGateway(
                GatewayConfig(
                    shards=(),
                    gateway_name="gw1",
                    follow=server.url,
                    advertise_url="http://127.0.0.1:8354",
                    probe_interval_s=0.1,
                    lease_ttl_s=1.0,
                    election_probes=2,
                )
            ).start()
            # the follower's polls renew the primary's lease and
            # register its advertise URL for the primary's peer watch
            deadline = time.monotonic() + 10.0
            while (
                not primary._election.replicas
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert "http://127.0.0.1:8354" in primary._election.replicas
            assert primary.telemetry.counter("fleet.lease_renewals") >= 1
            assert follower._election.role is Role.FOLLOWER

            # ...until the primary dies and the lease runs dry
            server.shutdown()
            server.server_close()
            primary.stop()
            deadline = time.monotonic() + 30.0
            while (
                not follower._election.is_primary()
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert follower._election.is_primary(), "follower never promoted"
            assert follower.telemetry.counter("fleet.elections_won") == 1
            # the epoch jumped past everything the old primary could mint
            assert follower.membership.epoch > follower.config.epoch_reserve
            audit = follower.election_audit()
            assert audit["transitions"][-1]["event"] == "promoted"
            assert audit["minted"], "promotion epoch missing from audit"
            # and the promoted gateway now accepts membership mutations
            status, body = follower.join(
                {"shard_name": "s0", "url": "http://127.0.0.1:9"}
            )
            assert status == 202, body
        finally:
            if follower is not None:
                follower.stop()
            try:
                server.server_close()
            except Exception:
                pass


@pytest.mark.skipif(not SLOW_TIER, reason="set UVMREPRO_SLOW_TESTS=1 to run")
class TestPartitionElectionAcceptance:
    def test_partitioned_primary_hands_over_and_demotes(self, tmp_path):
        """The PR's acceptance scenario, end to end.

        60 mixed jobs complete against 3 shards behind a replicated
        gateway pair; a fourth shard joins; ``network.partition``
        isolates the primary gw0 in both directions after its
        membership journal's 8th append - 3 seed records + probation +
        syncing + migration_start put append 8 on the migration's
        per-key cursor trail, so the cut lands mid arc-copy.  The
        follower gw1 promotes once its lease expires, finishes the
        join migration, and serves traffic; when the partition heals,
        gw0 observes the higher-epoch lease and demotes.  Everything
        stays bit-identical to solo simulation and the merged election
        audits show exactly one acting primary per epoch.
        """
        chaos = {
            "seed": 13,
            "faults": [
                {
                    "point": "network.partition",
                    "args": {
                        "rules": [
                            {
                                "src": "gw0",
                                "dst": "*",
                                "after_appends": 8,
                                "heal_after_s": 12.0,
                            },
                            {
                                "src": "*",
                                "dst": "gw0",
                                "after_appends": 8,
                                "heal_after_s": 12.0,
                            },
                        ]
                    },
                },
            ],
        }
        procs, shard_urls = [], {}
        journal = str(tmp_path / "gw0-membership.journal")
        try:
            for name in ("shard0", "shard1", "shard2"):
                proc, url = _start_shard(tmp_path, name)
                procs.append(proc)
                shard_urls[name] = url
            # only gw0 runs the chaos plan: partitions are enforced
            # inside the process a rule side names, so isolating gw0
            # needs no coordination with any other process.
            gw0_proc, gw0_url = _start_gateway(
                "gw0",
                shard_urls=[shard_urls[n] for n in sorted(shard_urls)],
                journal=journal,
                chaos=chaos,
            )
            procs.append(gw0_proc)
            gw1_proc, gw1_url = _start_gateway("gw1", follow=gw0_url)
            procs.append(gw1_proc)

            client = ServiceClient(
                [gw0_url, gw1_url],
                timeout_s=60.0,
                retries=3,
                backoff_budget_s=30.0,
            )
            gw1 = ServiceClient(gw1_url, timeout_s=30.0, retries=2)

            # 60 mixed jobs (30 unique x 2) complete and fill the
            # shard stores, so the joiner's arc is non-trivial and the
            # migration journals enough cursor records to arm the cut.
            submitted = [(client.submit(p)["job_id"], p) for p in _specs(30, 2)]
            assert len(submitted) == 60
            finals = {}
            for job_id, payload in submitted:
                final = client.wait(job_id, timeout_s=600.0, poll_s=0.05)
                assert final["state"] == "done", (
                    f"{job_id} ended {final['state']}: {final.get('error')}"
                )
                finals[job_id] = (payload, client.result(job_id))

            # the elastic join arms the partition chain mid-migration
            joiner_proc, joiner_url = _start_shard(
                tmp_path, "shard3", announce=[gw0_url, gw1_url]
            )
            procs.append(joiner_proc)

            # the follower's lease runs out behind the partition and it
            # promotes itself past the reserved epoch bound
            gw1_audit = _wait_role(gw1, "primary", timeout=90.0)
            assert gw1_audit["transitions"][-1]["event"] == "promoted"
            promoted_epoch = gw1_audit["transitions"][-1]["epoch"]
            assert promoted_epoch > 1024  # past the default reserve

            # the promoted primary finishes the join: shard3 goes
            # active on gw1's ring and holds its full arc
            _wait_member_state(gw1, "shard3", "active", timeout=90.0)
            from repro.fleet import HashRing

            view, _ = gw1.request_with_budget("GET", "/fleet/view")
            active = [
                m["name"] for m in view["members"] if m["state"] == "active"
            ]
            assert "shard3" in active
            ring = HashRing(active, vnodes=VNODES)
            source_keys = set()
            for name in ("shard0", "shard1", "shard2"):
                doc, _ = ServiceClient(shard_urls[name]).request_with_budget(
                    "GET", "/store/keys"
                )
                source_keys.update(doc["keys"])
            expected = {k for k in source_keys if ring.primary(k) == "shard3"}
            doc, _ = ServiceClient(joiner_url).request_with_budget(
                "GET", "/store/keys"
            )
            migrations, _ = gw1.request_with_budget("GET", "/fleet/migrations")
            assert set(doc["keys"]) == expected, (
                f"joiner store != arc; gw1 migration audit: {migrations}"
            )
            assert expected, "joiner arc was empty; scenario degenerated"

            # traffic keeps flowing through the acting primary:
            # resubmitted repeats stay bit-identical to solo simulation
            for payload in _specs(30, 1)[:6]:
                record = client.submit(payload)
                final = client.wait(record["job_id"], timeout_s=600.0, poll_s=0.05)
                assert final["state"] == "done"
                doc = client.result(record["job_id"])
                assert _stable(doc) == _stable(_solo_doc(payload))

            # the healed ex-primary observes the higher-epoch lease
            # (gw1 registered as its replica) and steps down
            gw0 = ServiceClient(gw0_url, timeout_s=30.0, retries=2)
            gw0_audit = _wait_role(gw0, "follower", timeout=120.0)
            assert gw0_audit["transitions"][-1]["event"] == "demoted"
            assert gw0_audit["transitions"][-1]["holder"] == "gw1"
            health, _ = gw0.request_with_budget("GET", "/healthz")
            assert health["election"]["primary_name"] == "gw1"
            # both gateways converge on the promoted epoch line
            view0, _ = gw0.request_with_budget("GET", "/fleet/view")
            view1, _ = gw1.request_with_budget("GET", "/fleet/view")
            assert view0["epoch"] == view1["epoch"] >= promoted_epoch
            assert view0["lease"]["holder"] == "gw1"

            # first-pass repeats agreed with each other and with solo
            by_key = {}
            for job_id, (payload, doc) in finals.items():
                key = JobSpec.from_dict(payload).spec_digest()
                by_key.setdefault(key, []).append((payload, doc))
            for key, group in by_key.items():
                first = _stable(group[0][1])
                for _, doc in group[1:]:
                    assert _stable(doc) == first, f"repeat mismatch for {key}"
            for key in list(by_key)[:3]:
                payload, doc = by_key[key][0]
                assert _stable(doc) == _stable(_solo_doc(payload))

            # zero quarantined entries anywhere
            assert _quarantined(tmp_path) == []

            # exactly one acting primary minted any epoch, fleet-wide
            gw0_audit, _ = gw0.request_with_budget("GET", "/fleet/elections")
            gw1_audit, _ = gw1.request_with_budget("GET", "/fleet/elections")
            audits = {"gw0": gw0_audit, "gw1": gw1_audit}
            _assert_one_primary_per_epoch(audits)
            assert gw1_audit["role"] == "primary"
            assert not gw1_audit["fenced"]

            # the partition really fired inside gw0 (chaos counters)
            metrics, _ = gw0.request_with_budget("GET", "/metrics")
            chaos_counters = {
                k: v
                for k, v in metrics["counters"].items()
                if k.startswith("chaos.network.")
            }
            assert chaos_counters.get("chaos.network.partitions_armed", 0) >= 2
            assert (
                chaos_counters.get("chaos.network.inbound_drops", 0)
                + chaos_counters.get("chaos.network.partition_refusals", 0)
            ) > 0

            # the merged election audit is the CI artifact
            artifact_dir = Path(os.environ.get("UVMREPRO_AUDIT_DIR", tmp_path))
            artifact_dir.mkdir(parents=True, exist_ok=True)
            artifact = artifact_dir / "election_audit.json"
            artifact.write_text(
                json.dumps(audits, indent=2, sort_keys=True)
            )
            assert artifact.is_file()
        finally:
            _reap(procs)
