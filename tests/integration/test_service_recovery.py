"""Integration: durable service state - journal replay, shed, poison, drain.

Acceptance criteria covered here:

* ``kill -9`` at any journal record boundary loses no job: replaying the
  journal prefix reconstructs an equivalent job table (terminal jobs
  keep their state, non-terminal jobs are requeued),
* a submission during overload is shed with HTTP 429 + ``Retry-After``
  and no job state is created,
* a poisoned spec key stops consuming workers while unrelated jobs
  keep completing, and the quarantine survives a restart.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.chaos.plan import PROCESS_KILL, FaultPlan, FaultSpec, set_active_plan
from repro.serve.client import ServiceClient, ServiceOverloadedError
from repro.serve.http_api import serve_http
from repro.serve.jobs import JobSpec, JobState
from repro.serve.journal import JobJournal, frame_entry
from repro.serve.service import (
    QueueFullError,
    ServiceConfig,
    ServiceDrainingError,
    SimulationService,
)
from repro.units import MiB

#: long enough to reliably be in flight when killed/drained.
SLOW_SPEC = dict(workload="random", data_bytes=48 * MiB, gpu={"memory_bytes": 16 * MiB})
FAST_SPEC = dict(workload="stream", data_bytes=2 * MiB, gpu={"memory_bytes": 16 * MiB})

#: the full per-ordinal recovery sweep is CI-only (slow tier); the
#: default run samples the boundaries instead.
SLOW_TIER = os.environ.get("UVMREPRO_SLOW_TESTS", "") not in ("", "0")


def make_service(tmp_path, **overrides):
    config = ServiceConfig(
        n_workers=overrides.pop("n_workers", 1),
        job_timeout_s=overrides.pop("job_timeout_s", 120.0),
        retry_backoff_s=0.05,
        sweep_cache_dir=str(tmp_path / "sweep-cache"),
        **overrides,
    )
    return SimulationService(str(tmp_path / "store"), config)


def wait_running(svc, record, timeout_s=30.0, attempt=1):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        handle = (
            svc.pool.workers.get(record.worker_id)
            if record.worker_id is not None
            else None
        )
        if (
            record.state is JobState.RUNNING
            and record.attempts == attempt
            and handle is not None
            and handle.alive()
        ):
            return handle
        time.sleep(0.01)
    raise AssertionError(
        f"attempt {attempt} never started (state={record.state}, "
        f"attempts={record.attempts})"
    )


def journal_boundaries(journal_path):
    """Byte offsets of every record boundary (0 .. end) in appearance order."""
    replay = JobJournal(journal_path).replay()
    offsets = [0]
    for entry in replay.entries:
        offsets.append(offsets[-1] + len(frame_entry(entry)))
    assert offsets[-1] == replay.valid_bytes
    return offsets, replay.entries


class TestRecoveryMatrix:
    """Boot from every journal prefix: the job table must be equivalent."""

    def run_reference(self, tmp_path):
        """A real multi-job run whose journal seeds the matrix."""
        with make_service(tmp_path) as svc:
            specs = [
                JobSpec(**{**FAST_SPEC, "seed": seed}) for seed in (1, 2, 3)
            ]
            records = [svc.submit(spec) for spec in specs]
            for record in records:
                assert svc.wait(record.job_id, timeout=120.0).state is JobState.DONE
            # a duplicate submit exercises the store-hit journal path
            dup = svc.submit(specs[0])
            assert dup.cache_hit
        store_dir = tmp_path / "store"
        return store_dir, journal_boundaries(store_dir / "journal.jsonl")

    def recover(self, scratch, store_dir, prefix_bytes, with_store):
        """Boot a fresh service on a journal prefix; return it (stopped)."""
        boot_dir = scratch / "boot"
        if boot_dir.exists():
            shutil.rmtree(boot_dir)
        if with_store:
            shutil.copytree(store_dir, boot_dir)
        else:
            boot_dir.mkdir(parents=True)
        data = (store_dir / "journal.jsonl").read_bytes()
        (boot_dir / "journal.jsonl").write_bytes(data[:prefix_bytes])
        return SimulationService(
            str(boot_dir), ServiceConfig(n_workers=1, sweep_cache_dir="")
        )

    def check_equivalent(self, svc, prefix_entries, with_store):
        """The replayed table matches the last-write-wins view of the prefix."""
        expected = {}
        for entry in prefix_entries:
            record = entry["record"]
            expected[record["job_id"]] = record
        table = {r.job_id: r for r in svc.jobs()}
        assert set(table) == set(expected)
        for job_id, logged in expected.items():
            live = table[job_id]
            logged_state = JobState(logged["state"])
            if logged_state.terminal:
                assert live.state is logged_state
            elif with_store:
                # the result landed before the crash: instant completion
                assert live.state is JobState.DONE and live.cache_hit
            else:
                assert live.state is JobState.QUEUED
        replayed = svc.telemetry.counter("jobs.journal_replayed")
        assert replayed == len(expected)
        # recovery compacted the prefix into one snapshot of the table
        assert svc.telemetry.counter("journal.compactions") == (
            1 if prefix_entries else 0
        )
        assert svc.journal.record_count == len(expected)

    def test_replay_matrix_over_journal_prefixes(self, tmp_path):
        store_dir, (offsets, entries) = self.run_reference(tmp_path)
        total = len(offsets) - 1
        assert total >= 8  # 3 jobs x (queued/running/done) wobble + store hit
        if SLOW_TIER:
            ordinals = range(total + 1)
        else:
            ordinals = sorted({0, 1, 2, total // 2, total - 1, total})
        for with_store in (False, True):
            for ordinal in ordinals:
                svc = self.recover(
                    tmp_path / f"m{int(with_store)}-{ordinal}",
                    store_dir,
                    offsets[ordinal],
                    with_store,
                )
                try:
                    self.check_equivalent(svc, entries[:ordinal], with_store)
                finally:
                    svc.stop()

    def test_recovered_service_completes_the_requeued_jobs(self, tmp_path):
        """End-to-end: crash mid-history, restart, every job still finishes."""
        store_dir, (offsets, entries) = self.run_reference(tmp_path)
        # cut right after the first job's first record: it is queued,
        # nothing is in the store yet at that point in history
        svc = self.recover(tmp_path / "full", store_dir, offsets[1], False)
        try:
            svc.start()
            for record in svc.jobs():
                final = svc.wait(record.job_id, timeout=120.0)
                assert final.state is JobState.DONE
            # job ids keep ascending across the reboot - no collisions
            # with anything the recovered table holds
            recovered_ids = {r.job_id for r in svc.jobs()}
            fresh = svc.submit(JobSpec(**{**FAST_SPEC, "seed": 99}))
            assert fresh.job_id not in recovered_ids
        finally:
            svc.stop()

    def test_torn_final_record_is_ignored(self, tmp_path):
        store_dir, (offsets, entries) = self.run_reference(tmp_path)
        boot = tmp_path / "torn"
        boot.mkdir()
        data = (store_dir / "journal.jsonl").read_bytes()
        torn = data[: offsets[2]] + data[offsets[2] : offsets[3] - 3]
        (boot / "journal.jsonl").write_bytes(torn)
        svc = SimulationService(
            str(boot), ServiceConfig(n_workers=1, sweep_cache_dir="")
        )
        try:
            self.check_equivalent(svc, entries[:2], with_store=False)
            assert svc.telemetry.counter("journal.torn_tails") == 1
        finally:
            svc.stop()

    def test_stale_compaction_tmp_is_swept_at_boot(self, tmp_path):
        store_dir, (offsets, entries) = self.run_reference(tmp_path)
        stale = store_dir / "journal.jsonl.tmp.12345"
        stale.write_bytes(b"crashed-compaction debris")
        svc = SimulationService(
            str(store_dir), ServiceConfig(n_workers=1, sweep_cache_dir="")
        )
        try:
            assert not stale.exists()
            assert all(r.state.terminal for r in svc.jobs())
        finally:
            svc.stop()


class TestServiceKillChaos:
    """A real ``kill -9`` of the whole service via the chaos plan."""

    CHILD = textwrap.dedent(
        """
        import sys
        from repro.serve.jobs import JobSpec
        from repro.serve.service import ServiceConfig, SimulationService
        from repro.units import MiB

        svc = SimulationService(
            sys.argv[1], ServiceConfig(n_workers=1, sweep_cache_dir="")
        )
        # no start(): the journal append in submit() trips the kill hook
        svc.submit(JobSpec(workload="stream", data_bytes=2 * MiB,
                           gpu={"memory_bytes": 16 * MiB}))
        print("UNREACHABLE")  # the hook must have SIGKILLed us by now
        """
    )

    def test_sigkill_after_first_journal_record_loses_nothing(self, tmp_path):
        plan = {
            "seed": 7,
            "faults": [
                {"point": "process.service_kill", "args": {"after_records": 1}}
            ],
        }
        env = dict(os.environ)
        env["UVMREPRO_CHAOS"] = json.dumps(plan)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(tmp_path / "store")],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        assert "UNREACHABLE" not in proc.stdout

        set_active_plan(None)  # the chaos plan dies with the child
        try:
            svc = make_service(tmp_path)
            try:
                svc.start()
                records = svc.jobs()
                assert len(records) == 1  # the submit survived the kill -9
                final = svc.wait(records[0].job_id, timeout=120.0)
                assert final.state is JobState.DONE
            finally:
                svc.stop()
        finally:
            set_active_plan(None, reset=True)


class TestAdmissionControl:
    def overloaded(self, tmp_path):
        """A service whose queue is parked at the high watermark.

        The supervisor is deliberately not started, so queued jobs sit
        still and the watermark arithmetic is exact.
        """
        svc = make_service(
            tmp_path,
            queue_high_watermark=4,
            queue_low_watermark=2,
            shed_retry_after_s=0.05,
        )
        queued = [
            svc.submit(JobSpec(**{**FAST_SPEC, "seed": seed}))
            for seed in range(4)
        ]
        return svc, queued

    def test_shed_raises_queue_full_and_creates_no_state(self, tmp_path):
        svc, queued = self.overloaded(tmp_path)
        try:
            with pytest.raises(QueueFullError) as info:
                svc.submit(JobSpec(**{**FAST_SPEC, "seed": 100}))
            assert info.value.status == 429
            assert info.value.retry_after_s > 0
            assert len(svc.jobs()) == len(queued)  # nothing was registered
            assert svc.metrics()["counters"]["queue.shed"] == 1
            assert svc.metrics()["gauges"]["queue_shed_total"] == 1
        finally:
            svc.stop()

    def test_hysteresis_readmits_below_the_low_watermark(self, tmp_path):
        svc, queued = self.overloaded(tmp_path)
        try:
            with pytest.raises(QueueFullError):
                svc.submit(JobSpec(**{**FAST_SPEC, "seed": 100}))
            # one cancel leaves depth 3 > low watermark: still shedding
            assert svc.cancel(queued[0].job_id)
            with pytest.raises(QueueFullError):
                svc.submit(JobSpec(**{**FAST_SPEC, "seed": 100}))
            # down to the low watermark: admission resumes
            assert svc.cancel(queued[1].job_id)
            record = svc.submit(JobSpec(**{**FAST_SPEC, "seed": 100}))
            assert record.state is JobState.QUEUED
        finally:
            svc.stop()

    def test_http_shed_is_429_with_retry_after(self, tmp_path):
        svc, _ = self.overloaded(tmp_path)
        server = serve_http(svc)
        try:
            ready, detail = svc.readiness()
            assert not ready  # the probe sees the watermark before a submit
            assert any("shedding" in reason for reason in detail["reasons"])
            client = ServiceClient(server.url, retries=0)
            with pytest.raises(ServiceOverloadedError) as info:
                client.submit({**FAST_SPEC, "seed": 100})
            assert info.value.status == 429
            assert info.value.retry_after_s == pytest.approx(0.05)
            # shedding is now latched and visible on the readiness probe
            with pytest.raises(ServiceOverloadedError) as probe:
                client.readyz()
            assert probe.value.status == 503
        finally:
            server.shutdown()
            svc.stop()

    def test_client_retries_honor_retry_after_then_surface_overload(
        self, tmp_path
    ):
        svc, _ = self.overloaded(tmp_path)
        server = serve_http(svc)
        try:
            client = ServiceClient(
                server.url, retries=2, retry_backoff_s=0.001
            )
            t0 = time.monotonic()
            with pytest.raises(ServiceOverloadedError):
                client.submit({**FAST_SPEC, "seed": 100})
            elapsed = time.monotonic() - t0
            # two retry sleeps of >= the 0.05 s Retry-After hint each
            assert elapsed >= 0.1
            assert svc.metrics()["counters"]["queue.shed"] == 3
        finally:
            server.shutdown()
            svc.stop()


class TestPoisonBreaker:
    def test_repeated_worker_deaths_poison_the_key(self, tmp_path):
        with make_service(tmp_path, poison_threshold=2, max_retries=5) as svc:
            record = svc.submit(JobSpec(**SLOW_SPEC))
            for attempt in (1, 2):
                handle = wait_running(svc, record, attempt=attempt)
                os.kill(handle.process.pid, signal.SIGKILL)
            final = svc.wait(record.job_id, timeout=60.0)
            assert final.state is JobState.POISONED
            assert "worker deaths" in final.error
            assert svc.metrics()["counters"]["jobs.poisoned"] == 1

            # resubmitting the quarantined key consumes no worker at all
            again = svc.submit(JobSpec(**SLOW_SPEC))
            assert again.state is JobState.POISONED
            assert again.attempts == 0
            assert svc.metrics()["counters"]["jobs.poisoned"] == 2
            assert svc.metrics()["gauges"]["poisoned_keys"] == 1

            # unrelated work still completes on the healed pool
            other = svc.submit(JobSpec(**FAST_SPEC))
            assert svc.wait(other.job_id, timeout=120.0).state is JobState.DONE

    def test_quarantine_survives_a_restart(self, tmp_path):
        with make_service(tmp_path, poison_threshold=2, max_retries=5) as svc:
            record = svc.submit(JobSpec(**SLOW_SPEC))
            for attempt in (1, 2):
                handle = wait_running(svc, record, attempt=attempt)
                os.kill(handle.process.pid, signal.SIGKILL)
            assert svc.wait(record.job_id, timeout=60.0).state is JobState.POISONED

        with make_service(tmp_path) as reborn:
            replayed = {r.job_id: r for r in reborn.jobs()}
            assert replayed[record.job_id].state is JobState.POISONED
            again = reborn.submit(JobSpec(**SLOW_SPEC))
            assert again.state is JobState.POISONED

    def test_chaos_plan_poisons_one_key_while_others_complete(self, tmp_path):
        """The breaker under the chaos harness: a deterministic plan kills
        every attempt of one spec's key; an unrelated spec sails through."""
        poison_spec = JobSpec(**SLOW_SPEC)
        clean_spec = JobSpec(**FAST_SPEC)
        poison_key = poison_spec.cache_key()
        clean_key = clean_spec.cache_key()

        # keys embed code_version(), so the seed cannot be hardcoded:
        # search for one whose 0.5-probability draws kill every eligible
        # attempt of the poison key and none of the clean key's.
        plan = None
        for seed in range(500):
            candidate = FaultPlan(
                seed=seed,
                faults=(
                    FaultSpec(point=PROCESS_KILL, probability=0.5, attempts=3),
                ),
            )
            kills_poison = all(
                candidate.should_fire(PROCESS_KILL, poison_key, t) is not None
                for t in range(3)
            )
            spares_clean = all(
                candidate.should_fire(PROCESS_KILL, clean_key, t) is None
                for t in range(3)
            )
            if kills_poison and spares_clean:
                plan = candidate
                break
        assert plan is not None, "no discriminating chaos seed in range"

        old = os.environ.get("UVMREPRO_CHAOS")
        os.environ["UVMREPRO_CHAOS"] = plan.to_json()
        try:
            with make_service(
                tmp_path, n_workers=2, poison_threshold=3, max_retries=5
            ) as svc:
                poisoned = svc.submit(poison_spec)
                clean = svc.submit(clean_spec)
                assert svc.wait(clean.job_id, timeout=120.0).state is JobState.DONE
                final = svc.wait(poisoned.job_id, timeout=120.0)
                assert final.state is JobState.POISONED
                counters = svc.metrics()["counters"]
                assert counters["workers.deaths"] == 3
                assert counters["jobs.poisoned"] == 1
                # the pool healed: both workers alive after the storm
                assert svc.metrics()["gauges"]["workers_alive"] == 2
        finally:
            if old is None:
                os.environ.pop("UVMREPRO_CHAOS", None)
            else:
                os.environ["UVMREPRO_CHAOS"] = old
            set_active_plan(None, reset=True)


class TestGracefulDrain:
    def test_drain_rejects_submissions_and_requeues_running_work(self, tmp_path):
        svc = make_service(tmp_path, drain_timeout_s=0.3).start()
        running = svc.submit(JobSpec(**SLOW_SPEC))
        wait_running(svc, running)
        queued = svc.submit(JobSpec(**FAST_SPEC))
        assert queued.state is JobState.QUEUED

        svc.drain()  # the slow job cannot finish inside 0.3 s
        assert svc.draining
        assert running.state is JobState.QUEUED  # journaled back for later
        with pytest.raises(ServiceDrainingError) as info:
            svc.submit(JobSpec(**{**FAST_SPEC, "seed": 9}))
        assert info.value.status == 503

        # the restarted service finishes everything the drain preserved
        with make_service(tmp_path, job_timeout_s=300.0) as reborn:
            for job_id in (running.job_id, queued.job_id):
                final = reborn.wait(job_id, timeout=300.0)
                assert final.state is JobState.DONE

    def test_drain_with_idle_queue_is_immediate(self, tmp_path):
        svc = make_service(tmp_path).start()
        record = svc.submit(JobSpec(**FAST_SPEC))
        assert svc.wait(record.job_id, timeout=120.0).state is JobState.DONE
        t0 = time.monotonic()
        svc.drain()
        assert time.monotonic() - t0 < 5.0
        ready, detail = svc.readiness()
        assert not ready and "draining" in detail["reasons"]
