"""Integration: the parallel sweep executor and its on-disk cache."""

import os
import time

import pytest

from repro.experiments.runner import (
    ExperimentSetup,
    code_version,
    run_sweep,
    simulate,
    sweep_cache_key,
)
from repro.units import MiB
from repro.workloads.registry import make_workload


def small_setup(**gpu):
    return ExperimentSetup().with_gpu(memory_bytes=32 * MiB, **gpu)


def points():
    return [
        make_workload("random", 4 * MiB),
        make_workload("sgemm", 4 * MiB),
        make_workload("stream", 4 * MiB),
    ]


class TestSweepCorrectness:
    def test_matches_simulate_in_order(self, tmp_path):
        setup = small_setup()
        results = run_sweep(points(), setup=setup, workers=1, cache_dir=str(tmp_path))
        direct = [simulate(w, setup) for w in points()]
        assert [r.total_time_ns for r in results] == [
            r.total_time_ns for r in direct
        ]
        assert [r.counters.as_dict() for r in results] == [
            r.counters.as_dict() for r in direct
        ]

    def test_mixed_point_forms(self, tmp_path):
        default = small_setup()
        other = small_setup().with_driver(prefetch_enabled=False)
        results = run_sweep(
            [points()[0], (points()[0], other), (points()[0], None)],
            setup=default,
            workers=1,
            cache_dir=str(tmp_path),
        )
        # bare and (workload, None) points both use the default setup
        assert results[0].total_time_ns == results[2].total_time_ns
        # an explicit setup produces a genuinely different run
        assert results[1].total_time_ns != results[0].total_time_ns

    def test_pool_matches_serial(self, tmp_path):
        serial = run_sweep(points(), setup=small_setup(), workers=1, cache=False)
        pooled = run_sweep(points(), setup=small_setup(), workers=4, cache=False)
        assert [r.total_time_ns for r in serial] == [r.total_time_ns for r in pooled]
        assert [r.counters.as_dict() for r in serial] == [
            r.counters.as_dict() for r in pooled
        ]


class TestSweepCache:
    def test_second_invocation_hits_cache(self, tmp_path):
        setup = small_setup()
        first = run_sweep(points(), setup=setup, workers=1, cache_dir=str(tmp_path))
        assert len(os.listdir(tmp_path)) == len(points())
        t0 = time.perf_counter()
        second = run_sweep(points(), setup=setup, workers=1, cache_dir=str(tmp_path))
        cached_s = time.perf_counter() - t0
        assert [r.total_time_ns for r in first] == [r.total_time_ns for r in second]
        assert [r.counters.as_dict() for r in first] == [
            r.counters.as_dict() for r in second
        ]
        # a cache hit is a pickle read, not a simulation
        assert cached_s < 1.0

    def test_key_depends_on_workload_setup_and_code(self):
        setup = small_setup()
        base = sweep_cache_key(points()[0], setup)
        assert sweep_cache_key(points()[1], setup) != base
        assert sweep_cache_key(points()[0], setup.with_driver(batch_size=64)) != base
        assert sweep_cache_key(points()[0], setup, record_trace=True) != base
        assert len(code_version()) == 16  # content hash of src/repro
        assert sweep_cache_key(points()[0], setup) == base  # and it is stable

    def test_cache_disabled_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        run_sweep(points()[:1], setup=small_setup(), workers=1)
        assert os.listdir(tmp_path) == []
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        run_sweep(points()[:1], setup=small_setup(), workers=1)
        assert len(os.listdir(tmp_path)) == 1

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        setup = small_setup()
        key = sweep_cache_key(points()[0], setup)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        (result,) = run_sweep(
            points()[:1], setup=setup, workers=1, cache_dir=str(tmp_path)
        )
        assert result.total_time_ns == simulate(points()[0], setup).total_time_ns


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="parallel speedup needs >=4 cores"
)
def test_parallel_speedup():
    """The acceptance bar: >=8 points, 4 workers, >=2.5x over serial."""
    pts = [make_workload(name, 48 * MiB) for name in
           ("random", "sgemm", "stream", "hpgmg") * 2]
    setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
    t0 = time.perf_counter()
    serial = run_sweep(pts, setup=setup, workers=1, cache=False)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_sweep(pts, setup=setup, workers=4, cache=False)
    pooled_s = time.perf_counter() - t0
    assert [r.total_time_ns for r in serial] == [r.total_time_ns for r in pooled]
    assert serial_s / pooled_s >= 2.5
