"""Integration: simulations are bit-for-bit reproducible under a seed."""

import pytest

from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import MiB
from repro.workloads.registry import make_workload


def run_once(name: str, seed: int, trace: bool = False):
    setup = ExperimentSetup(seed=seed).with_gpu(memory_bytes=32 * MiB)
    return simulate(make_workload(name, 8 * MiB), setup, record_trace=trace)


@pytest.mark.parametrize("name", ["random", "sgemm", "hpgmg"])
class TestSeedDeterminism:
    def test_same_seed_identical_results(self, name):
        a = run_once(name, seed=77)
        b = run_once(name, seed=77)
        assert a.total_time_ns == b.total_time_ns
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.timer.as_dict() == b.timer.as_dict()

    def test_different_seed_different_interleaving(self, name):
        """Aggregate times may legitimately coincide (costs depend on
        counts, not identities), but the fault *streams* must differ."""
        a = run_once(name, seed=77, trace=True)
        b = run_once(name, seed=78, trace=True)
        assert a.trace.fault_page.tolist() != b.trace.fault_page.tolist()


class TestTraceDeterminism:
    def test_fault_streams_identical(self):
        a = run_once("random", seed=5, trace=True)
        b = run_once("random", seed=5, trace=True)
        assert a.trace.fault_page.tolist() == b.trace.fault_page.tolist()
        assert a.trace.fault_time_ns.tolist() == b.trace.fault_time_ns.tolist()

    def test_recording_does_not_perturb_simulation(self):
        """The trace recorder is an observer: identical results with it
        on or off."""
        with_trace = run_once("sgemm", seed=5, trace=True)
        without = run_once("sgemm", seed=5, trace=False)
        assert with_trace.total_time_ns == without.total_time_ns
        assert with_trace.counters.as_dict() == without.counters.as_dict()
