"""Integration: the SoA phase engine is bit-equivalent to the scalar one.

The vectorized struct-of-arrays engine (``GpuDeviceConfig.engine="soa"``,
the default) must reproduce the scalar reference engine exactly: same
RNG draws, same fault interleaving through the uTLBs and fault buffer,
same counters, same simulated time.  Equivalence is checked across
workload patterns, replay policies, and the prefetcher on/off, down to
the recorded per-fault trace stream.
"""

import pytest

from repro.core.replay import ReplayPolicyKind
from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import MiB
from repro.workloads.registry import make_workload

WORKLOADS = ["random", "sgemm", "hpgmg"]
POLICIES = [ReplayPolicyKind.BATCH_FLUSH, ReplayPolicyKind.BLOCK]


def run_engine(engine: str, name: str, policy: ReplayPolicyKind, prefetch: bool):
    setup = (
        ExperimentSetup(seed=77)
        .with_gpu(memory_bytes=32 * MiB, engine=engine)
        .with_driver(replay_policy=policy, prefetch_enabled=prefetch)
    )
    return simulate(make_workload(name, 8 * MiB), setup, record_trace=True)


@pytest.mark.parametrize("prefetch", [False, True], ids=["no_pf", "pf"])
@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("name", WORKLOADS)
class TestSoaScalarEquivalence:
    def test_identical_results(self, name, policy, prefetch):
        soa = run_engine("soa", name, policy, prefetch)
        scalar = run_engine("scalar", name, policy, prefetch)

        assert soa.total_time_ns == scalar.total_time_ns
        assert soa.counters.as_dict() == scalar.counters.as_dict()
        assert soa.timer.as_dict() == scalar.timer.as_dict()
        # the full fault interleaving, not just aggregates: any change in
        # emission order shifts uTLB coalescing and buffer drops
        assert soa.trace.fault_page.tolist() == scalar.trace.fault_page.tolist()
        assert (
            soa.trace.fault_time_ns.tolist() == scalar.trace.fault_time_ns.tolist()
        )

    def test_headline_counters(self, name, policy, prefetch):
        soa = run_engine("soa", name, policy, prefetch)
        scalar = run_engine("scalar", name, policy, prefetch)
        for key in ("faults.read", "faults.serviced"):
            assert soa.counters[key] == scalar.counters[key], key
        assert soa.evictions == scalar.evictions


class TestSoaDeterminism:
    def test_same_seed_identical(self):
        a = run_engine("soa", "random", ReplayPolicyKind.BATCH_FLUSH, True)
        b = run_engine("soa", "random", ReplayPolicyKind.BATCH_FLUSH, True)
        assert a.total_time_ns == b.total_time_ns
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.trace.fault_page.tolist() == b.trace.fault_page.tolist()
