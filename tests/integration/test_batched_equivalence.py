"""Integration: batched/warm execution is bit-identical to solo execution.

Three layers of proof:

* engine level - ``build_driver(warm=True)`` (memoized build, deep-copy
  reuse) reproduces the cold build's counters and timing exactly, for
  every registered workload,
* sweep level - a grouped/batched ``run_sweep`` returns the same
  results as point-by-point solo simulation,
* service level - a ``batch_max > 1`` service with the memory tier
  enabled stores byte-identical result documents to a solo
  (``batch_max=1``, memory tier off) service, under the UVMSAN
  invariant sanitizer,

plus the recovery contract: a worker dying mid-batch charges only the
member it was executing; unstarted siblings requeue with their
dispatch-time attempt refunded and every member still completes.
"""

import json
import os

import pytest

from repro.experiments.runner import (
    ExperimentSetup,
    build_driver,
    clear_warm_builds,
    run_sweep,
    simulate,
)
from repro.chaos.plan import set_active_plan
from repro.serve.jobs import JobSpec, JobState
from repro.serve.service import ServiceConfig, SimulationService
from repro.units import MiB
from repro.workloads.registry import all_workload_names, make_workload

#: tiny-but-oversubscribed points so every workload actually faults.
DATA_MIB = 12
GPU_MIB = 8

#: result-document fields that legitimately differ between runs.
VOLATILE_DOC_FIELDS = ("job_id", "worker_pid", "run_wall_ns")


def tiny_setup() -> ExperimentSetup:
    return ExperimentSetup().with_gpu(memory_bytes=GPU_MIB * MiB)


def fingerprint(result) -> tuple:
    return (
        result.total_time_ns,
        tuple(sorted(result.counters.as_dict().items())),
        tuple(sorted(result.timer.as_dict().items())),
    )


class TestWarmBuildMatrix:
    """Every registered workload: warm (memoized) build == cold build."""

    @pytest.mark.parametrize("name", all_workload_names())
    def test_warm_build_bit_identical(self, name):
        clear_warm_builds()
        setup = tiny_setup()
        cold = simulate(make_workload(name, DATA_MIB * MiB), setup)
        first_warm = build_driver(
            make_workload(name, DATA_MIB * MiB), setup, warm=True
        ).run()
        # second warm run hits the memo and must still match exactly
        memo_hit = build_driver(
            make_workload(name, DATA_MIB * MiB), setup, warm=True
        ).run()
        assert fingerprint(first_warm) == fingerprint(cold)
        assert fingerprint(memo_hit) == fingerprint(cold)


class TestBatchedSweepEquivalence:
    def test_grouped_sweep_matches_solo(self, tmp_path):
        clear_warm_builds()
        setup = tiny_setup()
        points = []
        for name in ("sgemm", "stream", "random"):
            for prefetch in (True, False):
                points.append(
                    (
                        make_workload(name, DATA_MIB * MiB),
                        setup.with_driver(prefetch_enabled=prefetch),
                    )
                )
        batched = run_sweep(
            points,
            workers=1,
            cache_dir=str(tmp_path / "cache"),
            mem_cache_mb=16,
            batch_max=4,
        )
        solo = [simulate(w, s) for w, s in points]
        for got, want in zip(batched, solo):
            assert fingerprint(got) == fingerprint(want)


def stripped(doc: dict) -> dict:
    doc = dict(doc)
    meta = dict(doc.get("meta", {}))
    for field in VOLATILE_DOC_FIELDS:
        meta.pop(field, None)
    doc["meta"] = meta
    return doc


class TestServiceBatchedEquivalence:
    def specs(self):
        # four distinct keys sharing one build signature, so a batched
        # service runs them as one warm batch.
        base = dict(
            workload="sgemm", data_bytes=DATA_MIB * MiB,
            gpu={"memory_bytes": GPU_MIB * MiB},
        )
        return [
            JobSpec(**base),
            JobSpec(**base, driver={"prefetch_enabled": False}),
            JobSpec(**base, driver={"replay_policy": "once"}),
            JobSpec(**base, cost={"driver_wakeup_ns": 9_500}),
        ]

    def run_service(self, root, batch_max, mem_cache_mb):
        config = ServiceConfig(
            n_workers=1,
            retry_backoff_s=0.05,
            sweep_cache_dir="",  # no memo: force real computation
            batch_max=batch_max,
            mem_cache_mb=mem_cache_mb,
        )
        docs = {}
        with SimulationService(str(root), config) as svc:
            records = [svc.submit(spec) for spec in self.specs()]
            for record in records:
                final = svc.wait(record.job_id, timeout=300.0)
                assert final.state is JobState.DONE, final.error
            for record in records:
                docs[record.key] = svc.result_doc(record.job_id)
        return docs

    def test_batched_docs_bit_identical_to_solo(self, tmp_path, monkeypatch):
        monkeypatch.setenv("UVMREPRO_SANITIZE", "1")
        solo = self.run_service(tmp_path / "solo", batch_max=1, mem_cache_mb=0)
        batched = self.run_service(tmp_path / "batched", batch_max=8, mem_cache_mb=64)
        assert set(solo) == set(batched)
        for key in solo:
            assert stripped(solo[key]) == stripped(batched[key])


class TestDeathMidBatch:
    def test_worker_death_mid_batch_charges_only_active_member(self, tmp_path):
        """A worker SIGKILLed at member start: the active member is
        retried (one attempt consumed, one death counted against its
        key); unstarted siblings requeue with the attempt refunded; the
        journal stays consistent and every member completes."""
        plan = {
            "seed": 11,
            "faults": [
                # kill the worker at the start of every key's first
                # attempt: each dispatch round loses exactly one member,
                # siblings requeue, and attempt 2 is clean.
                {"point": "process.worker_kill", "args": {"at": "start"},
                 "probability": 1.0, "attempts": 1}
            ],
        }
        old = os.environ.get("UVMREPRO_CHAOS")
        os.environ["UVMREPRO_CHAOS"] = json.dumps(plan)
        try:
            config = ServiceConfig(
                n_workers=1,
                retry_backoff_s=0.05,
                max_retries=3,
                sweep_cache_dir="",
                batch_max=4,
                mem_cache_mb=0,
            )
            base = dict(
                workload="stream", data_bytes=4 * MiB,
                gpu={"memory_bytes": 8 * MiB},
            )
            specs = [
                JobSpec(**base, seed=0x5EED, cost={"driver_wakeup_ns": ns})
                for ns in (9_000, 9_100, 9_200, 9_300)
            ]
            assert len({s.batch_signature() for s in specs}) == 1
            store_dir = tmp_path / "store"
            with SimulationService(str(store_dir), config) as svc:
                records = [svc.submit(spec) for spec in specs]
                for record in records:
                    final = svc.wait(record.job_id, timeout=300.0)
                    assert final.state is JobState.DONE, final.error
                    # own kill consumed attempt 1, attempt 2 succeeded;
                    # sibling requeues refunded their dispatch attempts.
                    assert final.attempts == 2
                counters = svc.metrics()["counters"]
                # exactly one death per key - unstarted siblings were
                # never charged, so nothing approached the poison
                # breaker (threshold 3) and nothing terminally failed.
                assert counters["workers.deaths"] == len(specs)
                assert counters["jobs.completed"] == len(specs)
                assert counters.get("jobs.poisoned", 0) == 0
                assert counters.get("jobs.failed", 0) == 0
                events = svc.telemetry.events_since(0, limit=10_000)
                sibling_requeues = [
                    e for e in events
                    if e["state"] == "requeued" and e.get("batch_sibling")
                ]
                assert sibling_requeues, "no sibling was ever requeued mid-batch"
        finally:
            if old is None:
                os.environ.pop("UVMREPRO_CHAOS", None)
            else:
                os.environ["UVMREPRO_CHAOS"] = old
            set_active_plan(None, reset=True)

        # journal consistency: a fresh service replaying the journal
        # reconstructs all four jobs as terminal DONE (no ghosts, no
        # requeued leftovers).
        with SimulationService(
            str(store_dir), ServiceConfig(n_workers=1, sweep_cache_dir="")
        ) as reborn:
            replayed = [r for r in reborn.jobs()]
            assert len(replayed) == 4
            assert all(r.state is JobState.DONE for r in replayed)
