"""Integration: the full 12 GB Titan V geometry (small data).

Everything else runs on scaled devices; this module verifies nothing in
the stack assumes small page counts - the allocator, residency arrays,
density tree, and driver all operate on the paper's real card geometry
(12 GiB = 6144 VABlocks = 3,145,728 pages).
"""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import GiB, MiB
from repro.workloads.synthetic import RandomAccess, RegularAccess


@pytest.fixture(scope="module")
def titan_v():
    return ExperimentSetup().with_gpu(memory_bytes=12 * GiB)


class TestFullGeometry:
    def test_regular_on_titan_v_geometry(self, titan_v):
        result = simulate(RegularAccess(64 * MiB), titan_v)
        assert result.faults_serviced > 0
        assert result.evictions == 0
        assert result.counters["gpu.accesses"] == 16384

    def test_pma_chunking_at_scale(self, titan_v):
        """The 32 MiB over-allocation chunk is tiny next to 12 GiB;
        allocation still amortizes."""
        result = simulate(RegularAccess(256 * MiB), titan_v)
        assert result.counters["pma.calls"] <= 256 // 32 + 1

    def test_random_faults_span_full_block_range(self, titan_v):
        result = simulate(RandomAccess(128 * MiB), titan_v, record_trace=True)
        touched_blocks = np.unique(result.trace.fault_vablock)
        assert touched_blocks.size == 64  # 128 MiB / 2 MiB

    def test_isolated_fault_latency_near_paper_band(self, titan_v):
        """One page on the full card: the marginal fault path sits near
        the 30-45 us anchor (the bare-fault estimate is pinned precisely
        by the cost-model unit tests); the end-to-end figure here also
        carries the one-time PMA warm-up call, the big-page prefetch
        upgrade, and the batch-flush policy's queue management."""
        one = simulate(RegularAccess(4096), titan_v)
        init_ns = one.timer.leaf_ns("init")
        warmup_ns = one.timer.total_ns("service.pma_alloc")
        fault_path_ns = one.total_time_ns - init_ns - warmup_ns
        assert 25_000 <= fault_path_ns <= 75_000
