"""Integration: oversubscribed runs - eviction machinery end to end."""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import MiB
from repro.workloads.registry import make_workload
from repro.workloads.synthetic import RandomAccess, RegularAccess


@pytest.fixture
def setup():
    return ExperimentSetup().with_gpu(memory_bytes=32 * MiB)


class TestEvictionEndToEnd:
    def test_oversubscribed_run_completes_with_evictions(self, setup):
        result = simulate(RegularAccess(int(32 * MiB * 1.25)), setup)
        assert result.evictions > 0
        assert result.counters["gpu.accesses"] == int(32 * MiB * 1.25) // 4096

    def test_undersubscribed_run_never_evicts(self, setup):
        result = simulate(RegularAccess(16 * MiB), setup)
        assert result.evictions == 0

    def test_eviction_floor_is_capacity_deficit(self, setup):
        """At least (data - capacity) VABlocks must be evicted."""
        data = int(32 * MiB * 1.5)
        result = simulate(RegularAccess(data), setup)
        deficit_blocks = (data - 32 * MiB) // (2 * MiB)
        assert result.evictions >= deficit_blocks

    def test_writeback_only_for_dirty_pages(self, setup):
        """Read-only data evicts without any D2H migration."""
        result = simulate(
            RegularAccess(int(32 * MiB * 1.25), write=False), setup
        )
        assert result.evictions > 0
        assert result.counters["pages.writeback_d2h"] == 0
        assert result.dma.d2h_bytes == 0

    def test_dirty_data_writes_back(self, setup):
        result = simulate(RegularAccess(int(32 * MiB * 1.25), write=True), setup)
        assert result.counters["pages.writeback_d2h"] > 0

    def test_random_thrash_exceeds_regular(self, setup):
        """Section V-A3: irregular access amplifies eviction traffic by
        an order of magnitude."""
        data = int(32 * MiB * 1.25)
        regular = simulate(RegularAccess(data), setup)
        random_ = simulate(RandomAccess(data), setup)
        assert random_.evictions > 5 * regular.evictions
        assert random_.dma.total_bytes > 2 * regular.dma.total_bytes
        assert random_.total_time_ns > 2 * regular.total_time_ns


class TestDeepOversubscription:
    def test_two_x_still_completes_consistently(self, setup):
        result = simulate(RandomAccess(int(32 * MiB * 2.0)), setup)
        assert result.counters["gpu.accesses"] == (64 * MiB) // 4096
        # transfers amplified well beyond the data size (the 504GB/32GB
        # phenomenon at ratio scale)
        assert result.dma.h2d_bytes > 2 * (64 * MiB)

    @pytest.mark.parametrize("name", ["stream", "tealeaf"])
    def test_structured_workloads_survive_oversubscription(self, name, setup):
        result = simulate(make_workload(name, int(32 * MiB * 1.3)), setup)
        assert result.evictions > 0
        assert result.breakdown().total_ns == result.total_time_ns
