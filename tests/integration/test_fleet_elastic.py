"""Integration: elastic membership - join mid-run, migrate, fail over.

Two tiers:

* **always on** - a real shard subprocess announces itself via
  ``--announce`` into a live in-process gateway, passes probation, has
  its ring arc migrated over (verified copies), serves traffic, and
  leaves gracefully with the arc migrated back out.  Every result stays
  bit-identical to a solo run and no store entry is ever quarantined.
* **UVMREPRO_SLOW_TESTS=1** - the full chaos acceptance scenario:
  2 shards + primary/follower gateway subprocesses, 60 mixed jobs, a
  third shard joining mid-run, ``process.gateway_kill`` SIGKILLing the
  primary mid-migration (clients fail over to the follower), a primary
  restart resuming the migration from its journaled cursor, and
  ``process.shard_kill`` taking out a shard - all jobs still complete
  bit-identical to solo simulation, and the migration audit is written
  out as a CI artifact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServiceClient
from repro.serve.jobs import JobSpec
from repro.units import MiB

_SRC = str(Path(__file__).resolve().parents[2] / "src")

SLOW_TIER = os.environ.get("UVMREPRO_SLOW_TESTS", "") not in ("", "0")

_WORKLOADS = ("stream", "random")


def _specs(unique: int, repeats: int) -> list[dict]:
    base = [
        {
            "workload": _WORKLOADS[i % len(_WORKLOADS)],
            "data_bytes": 1 * MiB,
            "seed": 2000 + i,
            "gpu": {"memory_bytes": 4 * MiB},
        }
        for i in range(unique)
    ]
    return base * repeats


def _child_env(chaos: dict | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), _SRC) if p
    )
    env["UVMREPRO_SANITIZE"] = "1"
    env.pop("UVMREPRO_CHAOS", None)
    if chaos is not None:
        env["UVMREPRO_CHAOS"] = json.dumps(chaos)
    return env


def _await_banner(proc, marker: str, what: str) -> str:
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if marker in line:
            return line.split(marker, 1)[1].split()[0]
    proc.kill()
    raise AssertionError(f"{what} never announced its URL")


def _start_shard(
    tmp_path,
    name: str,
    announce: list[str] | None = None,
    chaos: dict | None = None,
) -> tuple:
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", "127.0.0.1", "--port", "0",
        "--workers", "1",
        "--store-dir", str(tmp_path / name),
        "--shard-name", name,
        "--sweep-cache", "",
        "--max-retries", "2",
    ]
    if announce:
        argv += ["--announce", *announce]
    proc = subprocess.Popen(
        argv, env=_child_env(chaos), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, bufsize=1,
    )
    return proc, _await_banner(proc, "uvmrepro service on ", f"shard {name}")


def _start_gateway(
    tmp_path,
    name: str,
    shard_urls: list[str] | None = None,
    journal: str | None = None,
    follow: str | None = None,
    chaos: dict | None = None,
    port: int = 0,
) -> tuple:
    argv = [
        sys.executable, "-m", "repro.cli", "gateway",
        "--host", "127.0.0.1", "--port", str(port),
        "--gateway-name", name,
        "--probe-interval", "0.1",
        "--down-after", "2",
        "--recover-after", "1",
        "--probation-probes", "2",
    ]
    if shard_urls:
        argv += ["--shards", *shard_urls]
    if journal:
        argv += ["--membership-journal", journal]
    if follow:
        argv += ["--follow", follow]
    proc = subprocess.Popen(
        argv, env=_child_env(chaos), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, bufsize=1,
    )
    return proc, _await_banner(proc, "uvmrepro gateway on ", f"gateway {name}")


def _drain_pipe(proc):
    try:
        proc.stdout.close()
    except Exception:
        pass


def _reap(procs):
    for proc in procs:
        _drain_pipe(proc)
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _solo_doc(payload: dict) -> dict:
    from repro.experiments.runner import simulate
    from repro.serve.results import result_to_doc

    spec = JobSpec.from_dict(payload)
    workload, setup = spec.build()
    return result_to_doc(simulate(workload, setup))


def _stable(doc: dict) -> dict:
    return {k: v for k, v in doc.items() if k != "meta"}


def _quarantined(tmp_path) -> list[str]:
    return [
        str(p)
        for p in Path(tmp_path).rglob("quarantine/*")
        if p.is_file()
    ]


def _wait_member_state(client, name, state, timeout=45.0):
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        view, _ = client.request_with_budget("GET", "/fleet/view")
        last = {m["name"]: m["state"] for m in view["members"]}
        if last.get(name) == state:
            return view
        time.sleep(0.1)
    raise AssertionError(f"{name} never reached {state}; last view: {last}")


class TestElasticJoinAndLeave:
    def test_shard_joins_serves_and_leaves_with_arc_intact(self, tmp_path):
        """Announce -> probation -> migrate -> active -> leave -> migrate out."""
        from repro.fleet import FleetGateway, GatewayConfig, ShardSpec
        from repro.fleet import serve_gateway_http

        procs = []
        try:
            shard_urls = {}
            for name in ("shard0", "shard1"):
                proc, url = _start_shard(tmp_path, name)
                procs.append(proc)
                shard_urls[name] = url
            config = GatewayConfig(
                shards=tuple(
                    ShardSpec(n, shard_urls[n]) for n in sorted(shard_urls)
                ),
                vnodes=64,
                probe_interval_s=0.1,
                down_after_probes=2,
                recover_after_probes=1,
                probation_probes=2,
                read_timeout_s=60.0,
            )
            gateway = FleetGateway(config).start()
            server = serve_gateway_http(gateway, "127.0.0.1", 0)
            try:
                client = ServiceClient(
                    server.url, timeout_s=60.0, retries=3, backoff_budget_s=30.0
                )
                jobs = [
                    (client.submit(p)["job_id"], p) for p in _specs(20, 2)
                ]
                finals = {}
                for job_id, payload in jobs:
                    final = client.wait(job_id, timeout_s=600.0, poll_s=0.05)
                    assert final["state"] == "done", final.get("error")
                    finals[job_id] = (payload, client.result(job_id))

                # a third shard announces itself and is admitted
                proc, url = _start_shard(
                    tmp_path, "shard2", announce=[server.url]
                )
                procs.append(proc)
                _wait_member_state(client, "shard2", "active")
                assert "shard2" in gateway._ring.nodes
                assert gateway.telemetry.counter("fleet.joins") == 1
                assert gateway.telemetry.counter("fleet.members_promoted") == 1

                audit = gateway.migration_audit()
                joins = [
                    a for a in audit["completed"] if a["kind"] == "join"
                ]
                assert len(joins) == 1
                assert joins[0]["error"] is None
                assert joins[0]["skips"] == 0
                # the joiner's arc physically moved: verified copies.
                # The store holds code-versioned *cache keys* (not the
                # routing digests), so enumerate the source stores over
                # the same /store/keys surface the migrator uses and
                # recompute the remapped arc in store-key space.
                moved = joins[0]["keys_migrated"]
                assert moved == gateway.telemetry.counter(
                    "fleet.keys_migrated"
                )
                old_keys = set()
                for name in ("shard0", "shard1"):
                    shard_client = ServiceClient(shard_urls[name])
                    doc, _ = shard_client.request_with_budget(
                        "GET", "/store/keys"
                    )
                    old_keys.update(doc["keys"])  # sources keep copies
                expected = {
                    k
                    for k in old_keys
                    if gateway._ring.primary(k) == "shard2"
                }
                joiner_client = ServiceClient(url)
                doc, _ = joiner_client.request_with_budget(
                    "GET", "/store/keys"
                )
                assert set(doc["keys"]) == expected
                assert moved == len(expected) > 0

                # repeats resubmitted after the flip still agree with solo
                for payload in _specs(20, 1)[:3]:
                    record = client.submit(payload)
                    final = client.wait(
                        record["job_id"], timeout_s=600.0, poll_s=0.05
                    )
                    assert final["state"] == "done"
                    doc = client.result(record["job_id"])
                    assert _stable(doc) == _stable(_solo_doc(payload))

                # graceful leave migrates the arc back out
                body, _ = client.request_with_budget(
                    "POST", "/fleet/leave", {"shard_name": "shard2"}
                )
                assert body["state"] == "leaving"
                _wait_member_state(client, "shard2", "left")
                assert "shard2" not in gateway._ring.nodes
                leaves = [
                    a
                    for a in gateway.migration_audit()["completed"]
                    if a["kind"] == "leave"
                ]
                assert len(leaves) == 1
                assert leaves[0]["error"] is None
                assert leaves[0]["keys_migrated"] >= len(expected)

                # zero quarantined entries anywhere after both migrations
                assert _quarantined(tmp_path) == []

                # and the fleet still serves everything, bit-identically
                payload = jobs[0][1]
                record = client.submit(payload)
                final = client.wait(
                    record["job_id"], timeout_s=600.0, poll_s=0.05
                )
                assert final["state"] == "done"
                assert _stable(client.result(record["job_id"])) == _stable(
                    _solo_doc(payload)
                )
            finally:
                server.shutdown()
                server.server_close()
                gateway.stop()
        finally:
            _reap(procs)


@pytest.mark.skipif(not SLOW_TIER, reason="set UVMREPRO_SLOW_TESTS=1 to run")
class TestElasticChaosAcceptance:
    def test_gateway_kill_mid_migration_with_shard_loss(self, tmp_path):
        """The PR's acceptance scenario, end to end.

        60 mixed jobs through a replicated gateway pair; a third shard
        joins mid-run; the primary gateway is SIGKILLed by chaos after
        its membership journal's 7th append - which, with 2 seed
        members + probation + syncing + migration_start, lands the kill
        on the migration's per-key cursor records; one shard dies by
        ``process.shard_kill``; the restarted primary resumes the
        migration from the journaled cursor.  All jobs complete
        bit-identical to solo simulation, nothing is quarantined, and
        the migration audit accounts for every moved key.
        """
        chaos = {
            "seed": 11,
            "faults": [
                {
                    "point": "process.gateway_kill",
                    "args": {"gateway": "gw0", "after_records": 7},
                },
                {
                    "point": "process.shard_kill",
                    "args": {"shard": "shard1", "after_records": 12},
                },
            ],
        }
        procs, shard_urls = [], {}
        journal = str(tmp_path / "gw0-membership.journal")
        try:
            for name in ("shard0", "shard1"):
                proc, url = _start_shard(tmp_path, name, chaos=chaos)
                procs.append(proc)
                shard_urls[name] = url
            primary_proc, primary_url = _start_gateway(
                tmp_path,
                "gw0",
                shard_urls=[shard_urls["shard0"], shard_urls["shard1"]],
                journal=journal,
                chaos=chaos,
            )
            procs.append(primary_proc)
            follower_proc, follower_url = _start_gateway(
                tmp_path, "gw1", follow=primary_url
            )
            procs.append(follower_proc)

            client = ServiceClient(
                [primary_url, follower_url],
                timeout_s=60.0,
                retries=3,
                backoff_budget_s=30.0,
            )
            submitted = [
                (client.submit(p)["job_id"], p) for p in _specs(20, 3)
            ]
            assert len(submitted) == 60

            # let stores fill, then the elastic join arms the kill chain
            time.sleep(2.0)
            joiner_proc, _ = _start_shard(
                tmp_path, "shard2", announce=[primary_url, follower_url]
            )
            procs.append(joiner_proc)

            # the chaos fault SIGKILLs the primary (journal append >= 7)
            deadline = time.time() + 120
            while primary_proc.poll() is None and time.time() < deadline:
                time.sleep(0.2)
            assert primary_proc.poll() == -signal.SIGKILL, (
                "gateway_kill never fired; journal appends stayed < 7"
            )

            # clients keep finishing jobs through the follower replica
            finals = {}
            for job_id, payload in submitted:
                final = client.wait(job_id, timeout_s=600.0, poll_s=0.05)
                assert final["state"] == "done", (
                    f"{job_id} ended {final['state']}: {final.get('error')}"
                )
                finals[job_id] = (payload, client.result(job_id))

            # restart the primary on its old port, without chaos: it
            # replays the membership journal and resumes the migration
            port = int(primary_url.rsplit(":", 1)[1])
            restarted_proc, restarted_url = _start_gateway(
                tmp_path, "gw0", journal=journal, port=port
            )
            procs.append(restarted_proc)
            assert restarted_url == primary_url
            primary = ServiceClient(restarted_url, timeout_s=30.0, retries=2)
            view = _wait_member_state(primary, "shard2", "active")
            assert view["epoch"] > 0

            audits, _ = primary.request_with_budget("GET", "/fleet/migrations")
            joins = [a for a in audits["completed"] if a["kind"] == "join"]
            assert joins, "restarted primary never ran the resumed migration"
            resumed = joins[-1]
            # the journaled cursor carried keys copied before the kill
            assert resumed["keys_resumed"] + resumed["keys_migrated"] > 0

            # the shard_kill fault really took a shard out (SIGKILL)
            deadline = time.time() + 30
            while procs[1].poll() is None and time.time() < deadline:
                time.sleep(0.1)
            assert procs[1].poll() == -signal.SIGKILL

            # bit-identical: repeats agree with each other and with solo
            by_key = {}
            for job_id, (payload, doc) in finals.items():
                key = JobSpec.from_dict(payload).spec_digest()
                by_key.setdefault(key, []).append((payload, doc))
            for key, group in by_key.items():
                first = _stable(group[0][1])
                for _, doc in group[1:]:
                    assert _stable(doc) == first, f"repeat mismatch for {key}"
            for key in list(by_key)[:3]:
                payload, doc = by_key[key][0]
                assert _stable(doc) == _stable(_solo_doc(payload))

            # zero quarantined/corrupt entries after everything
            assert _quarantined(tmp_path) == []

            # fleet metrics account for the elasticity events
            metrics, _ = primary.request_with_budget("GET", "/metrics")
            counters = metrics["counters"]
            assert counters["fleet.epoch_bumps"] >= 1
            assert counters["fleet.keys_migrated"] == sum(
                a["keys_migrated"] for a in audits["completed"]
            )

            # the audit document is the CI artifact
            artifact_dir = Path(
                os.environ.get("UVMREPRO_AUDIT_DIR", tmp_path)
            )
            artifact_dir.mkdir(parents=True, exist_ok=True)
            artifact = artifact_dir / "migration_audit.json"
            artifact.write_text(json.dumps(audits, indent=2, sort_keys=True))
            assert artifact.is_file()
        finally:
            _reap(procs)
