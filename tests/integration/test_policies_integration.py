"""Integration: driver knobs exercised end to end."""

import pytest

from repro.core.replay import ReplayPolicyKind
from repro.experiments.runner import ExperimentSetup, simulate
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess, RegularAccess


@pytest.fixture
def setup():
    return ExperimentSetup().with_gpu(memory_bytes=64 * MiB)


class TestReplayPolicies:
    def test_block_policy_maximizes_replays(self, setup):
        results = {
            kind: simulate(
                RegularAccess(8 * MiB),
                setup.with_driver(replay_policy=kind, prefetch_enabled=False),
            )
            for kind in ReplayPolicyKind
        }
        replays = {k: r.counters["replays.issued"] for k, r in results.items()}
        assert replays[ReplayPolicyKind.BLOCK] == max(replays.values())
        assert replays[ReplayPolicyKind.ONCE] == min(replays.values())

    def test_flush_eliminates_duplicates_batch_does_not(self, setup):
        flush = simulate(
            RegularAccess(16 * MiB),
            setup.with_driver(
                replay_policy=ReplayPolicyKind.BATCH_FLUSH, prefetch_enabled=False
            ),
        )
        batch = simulate(
            RegularAccess(16 * MiB),
            setup.with_driver(
                replay_policy=ReplayPolicyKind.BATCH, prefetch_enabled=False
            ),
        )
        assert flush.counters["faults.duplicate"] == 0
        assert batch.counters["faults.duplicate"] > 0

    def test_all_policies_service_every_page(self, setup):
        for kind in ReplayPolicyKind:
            result = simulate(
                RegularAccess(4 * MiB),
                setup.with_driver(replay_policy=kind, prefetch_enabled=False),
            )
            assert result.faults_serviced == 1024


class TestBatchSize:
    @pytest.mark.parametrize("batch_size", [32, 256, 1024])
    def test_batch_size_changes_batching_not_correctness(self, setup, batch_size):
        result = simulate(
            RegularAccess(8 * MiB),
            setup.with_driver(batch_size=batch_size, prefetch_enabled=False),
        )
        assert result.faults_serviced == 2048
        assert result.counters["batches.count"] >= 2048 // batch_size // 4

    def test_smaller_batches_mean_more_batches(self, setup):
        small = simulate(
            RegularAccess(8 * MiB),
            setup.with_driver(batch_size=64, prefetch_enabled=False),
        )
        large = simulate(
            RegularAccess(8 * MiB),
            setup.with_driver(batch_size=512, prefetch_enabled=False),
        )
        assert small.counters["batches.count"] > large.counters["batches.count"]


class TestPrefetchThreshold:
    def test_lower_threshold_fewer_faults(self, setup):
        """Aggressiveness monotonicity at the run level (Section IV-C)."""
        faults = {}
        for threshold in (1, 51, 100):
            result = simulate(
                RandomAccess(16 * MiB), setup.with_driver(density_threshold=threshold)
            )
            faults[threshold] = result.faults_read
        assert faults[1] <= faults[51] <= faults[100]

    def test_prefetch_off_maximizes_faults(self, setup):
        on = simulate(RandomAccess(16 * MiB), setup)
        off = simulate(RandomAccess(16 * MiB), setup.with_driver(prefetch_enabled=False))
        assert off.faults_read > 2 * on.faults_read
        assert off.counters["pages.prefetch_h2d"] == 0


class TestExtensionsEndToEnd:
    def test_access_counter_eviction_runs(self, setup):
        cfg = setup.with_gpu(track_access_counters=True).with_driver(
            eviction_policy="access_counter"
        )
        result = simulate(RegularAccess(int(64 * MiB * 1.2)), cfg)
        assert result.evictions > 0

    def test_adaptive_prefetch_goes_aggressive_undersubscribed(self, setup):
        adaptive = simulate(
            RegularAccess(16 * MiB), setup.with_driver(adaptive_prefetch=True)
        )
        static = simulate(RegularAccess(16 * MiB), setup)
        assert adaptive.faults_read <= static.faults_read

    def test_origin_prefetcher_predicts(self, setup):
        result = simulate(
            RegularAccess(16 * MiB), setup.with_driver(prefetcher_kind="origin")
        )
        assert result.counters["pages.prefetch_h2d"] > 0
