"""Integration: failure handling - worker death, timeouts, cancellation.

Acceptance criterion covered here: killing a worker process mid-job
leaves the service alive, the job is retried and completes, and the
retry is visible in ``/metrics``.
"""

import os
import signal
import time

import pytest

from repro.serve.http_api import serve_http
from repro.serve.client import ServiceClient
from repro.serve.jobs import JobSpec, JobState
from repro.serve.service import ServiceConfig, SimulationService
from repro.units import MiB

#: heavily oversubscribed: long enough to reliably be in flight when killed.
SLOW_SPEC = dict(workload="random", data_bytes=48 * MiB, gpu={"memory_bytes": 16 * MiB})
FAST_SPEC = dict(workload="stream", data_bytes=2 * MiB, gpu={"memory_bytes": 16 * MiB})


def make_service(tmp_path, **overrides):
    config = ServiceConfig(
        n_workers=1,
        job_timeout_s=overrides.pop("job_timeout_s", 120.0),
        retry_backoff_s=0.05,
        sweep_cache_dir=str(tmp_path / "sweep-cache"),
        **overrides,
    )
    return SimulationService(str(tmp_path / "store"), config)


def wait_running(svc, record, timeout_s=30.0, attempt=1):
    """Block until the given attempt of the job is live on a worker."""
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        handle = (
            svc.pool.workers.get(record.worker_id)
            if record.worker_id is not None
            else None
        )
        if (
            record.state is JobState.RUNNING
            and record.attempts == attempt
            and handle is not None
            and handle.alive()
        ):
            return handle
        time.sleep(0.01)
    raise AssertionError(
        f"attempt {attempt} never started (state={record.state}, "
        f"attempts={record.attempts})"
    )


class TestWorkerDeathRecovery:
    def test_killed_worker_job_is_retried_and_completes(self, tmp_path):
        with make_service(tmp_path) as svc:
            server = serve_http(svc)
            try:
                client = ServiceClient(server.url)
                record = svc.submit(JobSpec(**SLOW_SPEC))
                handle = wait_running(svc, record)

                os.kill(handle.process.pid, signal.SIGKILL)

                final = svc.wait(record.job_id, timeout=300.0)
                assert final.state is JobState.DONE
                assert final.attempts == 2

                # the retry and the death are visible over /metrics
                counters = client.metrics()["counters"]
                assert counters["workers.deaths"] == 1
                assert counters["jobs.retried"] == 1
                assert counters["workers.respawns"] >= 1
                assert counters["jobs.completed"] == 1

                # the service is still alive and serving new jobs
                assert client.healthz()
                follow_up = svc.submit(JobSpec(**FAST_SPEC))
                assert svc.wait(follow_up.job_id, timeout=120.0).state is JobState.DONE
                assert client.metrics()["gauges"]["workers_alive"] == 1
            finally:
                server.shutdown()

    def test_retries_are_bounded(self, tmp_path):
        """A job whose worker dies on every attempt eventually FAILs."""
        with make_service(tmp_path, max_retries=1) as svc:
            record = svc.submit(JobSpec(**SLOW_SPEC))
            for attempt in (1, 2):  # initial attempt + one retry
                handle = wait_running(svc, record, attempt=attempt)
                os.kill(handle.process.pid, signal.SIGKILL)
            final = svc.wait(record.job_id, timeout=120.0)
            assert final.state is JobState.FAILED
            assert "retries exhausted" in final.error
            assert svc.metrics()["counters"]["jobs.failed"] == 1


class TestTimeouts:
    def test_expired_deadline_kills_and_retries(self, tmp_path):
        with make_service(tmp_path, job_timeout_s=0.3, max_retries=0) as svc:
            record = svc.submit(JobSpec(**SLOW_SPEC))
            final = svc.wait(record.job_id, timeout=60.0)
            assert final.state is JobState.FAILED
            assert "timeout" in final.error
            counters = svc.metrics()["counters"]
            assert counters["jobs.timed_out"] >= 1
            # pool was healed after the kill
            assert svc.metrics()["gauges"]["workers_alive"] == 1


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        with make_service(tmp_path) as svc:
            blocker = svc.submit(JobSpec(**SLOW_SPEC))
            wait_running(svc, blocker)
            queued = svc.submit(JobSpec(**FAST_SPEC))
            assert queued.state is JobState.QUEUED
            assert svc.cancel(queued.job_id)
            assert queued.state is JobState.CANCELLED
            assert svc.metrics()["counters"]["jobs.cancelled"] == 1
            # cancelling a terminal job reports False, not an error
            assert svc.cancel(queued.job_id) is False

    def test_cancel_running_job_frees_the_worker(self, tmp_path):
        with make_service(tmp_path) as svc:
            record = svc.submit(JobSpec(**SLOW_SPEC))
            wait_running(svc, record)
            assert svc.cancel(record.job_id)
            assert record.state is JobState.CANCELLED
            # the killed worker was replaced and still runs new jobs
            follow_up = svc.submit(JobSpec(**FAST_SPEC))
            assert svc.wait(follow_up.job_id, timeout=120.0).state is JobState.DONE

    def test_unknown_job_raises(self, tmp_path):
        with make_service(tmp_path) as svc:
            with pytest.raises(KeyError):
                svc.cancel("job-nope")
