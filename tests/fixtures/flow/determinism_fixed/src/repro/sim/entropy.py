"""Fixed twin: seed material is pure configuration."""

import zlib


def stable_entropy(name: str, seed: int) -> int:
    return seed ^ zlib.crc32(name.encode("utf-8"))
