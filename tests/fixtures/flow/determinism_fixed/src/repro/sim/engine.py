"""Fixed twin: config-derived seeds; wallclock only in sanctioned sinks."""

import time

from repro.sim.entropy import stable_entropy
from repro.sim.rng import SimRng


class Engine:
    def __init__(self, name: str, seed: int) -> None:
        # seed is pure configuration.
        self.rng = SimRng(seed=stable_entropy(name, seed))
        # wall-clock into a *_at record timestamp: sanctioned sink.
        self.created_at = time.time()

    def step(self, budget_s: float) -> float:
        # monotonic deadlines are not a taint source at all.
        deadline = time.monotonic() + budget_s
        return deadline
