"""Fixed twin: same shapes, units kept consistent."""

from repro.units import MiB, PAGE_SIZE, US, bytes_to_pages


def migrate_cost(size_bytes: int) -> int:
    latency = 20 * US
    per_page = 2 * US
    # ns + ns: consistent.
    return latency + per_page * bytes_to_pages(size_bytes)


def should_prefetch(size_bytes: int) -> bool:
    budget = 2 * MiB
    # bytes vs bytes: consistent.
    return 4 * PAGE_SIZE < budget


def page_span(size_bytes: int) -> int:
    # bytes // bytes is a dimensionless page count, not a mix.
    pages = (4 * MiB) // PAGE_SIZE
    return pages - bytes_to_pages(size_bytes)
