"""Fixed twin: journal-before-act holds; hooks are None-guarded."""


class MiniService:
    def __init__(self, journal, chaos=None, sanitizer=None) -> None:
        self.journal = journal
        self.chaos = chaos
        self.sanitizer = sanitizer
        self.jobs: dict[str, object] = {}

    def finish(self, record) -> None:
        record.state = "done"
        self.jobs[record.job_id] = record
        self._journal_record(record)

    def requeue(self, record) -> None:
        record.state = "queued"
        self.journal.append({"op": "job", "record": record.job_id})

    def step(self, batch) -> None:
        if self.chaos is not None:
            self.chaos.fire("dispatch")
        if self.sanitizer is not None:
            self.sanitizer.check_batch(batch)

    def _journal_record(self, record) -> None:
        self.journal.append({"op": "job", "record": record.job_id})
