"""Planted bugs: state mutated without journaling; unguarded hook use."""


class MiniService:
    def __init__(self, journal, chaos=None, sanitizer=None) -> None:
        self.journal = journal
        self.chaos = chaos
        self.sanitizer = sanitizer
        self.jobs: dict[str, object] = {}

    def finish(self, record) -> None:
        # BUG: job-state mutation with no journal append in this function.
        record.state = "done"
        self.jobs[record.job_id] = record

    def requeue(self, record) -> None:
        record.state = "queued"
        self.journal.append({"op": "job", "record": record.job_id})

    def step(self, batch) -> None:
        # BUG: chaos hook dereferenced without a None guard.
        self.chaos.fire("dispatch")
        # BUG: sanitizer hook called without a None guard.
        self.sanitizer.check_batch(batch)
