"""Planted bug: a parent-process lock captured into a worker."""

import multiprocessing
import threading


def _worker(lock: threading.Lock, n: int) -> None:
    with lock:
        print(n)


def spawn(n: int) -> multiprocessing.Process:
    lock = threading.Lock()
    # BUG: a threading lock crosses the process spawn boundary.
    proc = multiprocessing.Process(target=_worker, args=(lock, n))
    proc.start()
    return proc
