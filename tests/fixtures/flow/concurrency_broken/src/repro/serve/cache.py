"""Planted bug: lock-guarded state read without the lock."""

import threading


class MiniCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict[str, int] = {}
        self._hits = 0

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._items[key] = value

    def get(self, key: str) -> int | None:
        with self._lock:
            value = self._items.get(key)
            if value is not None:
                self._hits += 1
            return value

    def size(self) -> int:
        # BUG: self._items is guarded by self._lock everywhere else.
        return len(self._items)

    def reset_hits(self) -> None:
        # BUG: write to lock-guarded counter without the lock.
        self._hits = 0
