"""Planted bugs: ns/bytes/pages mixed in arithmetic and comparisons."""

from repro.units import MiB, PAGE_SIZE, US, bytes_to_pages


def migrate_cost(size_bytes: int) -> int:
    latency = 20 * US
    footprint = 2 * MiB
    # BUG: adds a nanosecond latency to a byte count.
    return latency + footprint


def should_prefetch(size_bytes: int) -> bool:
    budget = 50 * US
    # BUG: orders a byte count against a nanosecond budget.
    return 4 * PAGE_SIZE < budget


def page_span(size_bytes: int) -> int:
    pages = bytes_to_pages(4 * MiB)
    # BUG: subtracts pages from bytes.
    return 4 * MiB - pages
