"""Mini units twin: the taint sources the units analysis anchors on."""

NS = 1
US = 1_000 * NS
MS = 1_000 * US

KiB = 1 << 10
MiB = 1 << 20
PAGE_SIZE = 4 * KiB


def bytes_to_pages(n: int) -> int:
    return (n + PAGE_SIZE - 1) // PAGE_SIZE
