"""Mini SimRng twin so the rng-seed sink has a resolvable target."""


class SimRng:
    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self.seed = seed
        self.name = name

    def fork(self, stream: str) -> "SimRng":
        return SimRng(self.seed + 1, stream)
