"""Planted bugs: nondeterminism reaching seeds and simulation state."""

import time

from repro.sim.entropy import mixed_entropy
from repro.sim.rng import SimRng


class Engine:
    def __init__(self, name: str) -> None:
        # BUG: wallclock + hash() reach the SimRng seed through two calls.
        self.rng = SimRng(seed=mixed_entropy(name))

    def step(self) -> None:
        # BUG: wall-clock value stored into simulation state.
        self.cursor = time.time()
