"""Planted bug: nondeterministic seed material, laundered through a helper."""

import time


def fresh_entropy() -> float:
    # wallclock born here; the leak is two calls away.
    return time.time()


def mixed_entropy(name: str) -> int:
    return int(fresh_entropy() * 1000) ^ hash(name)
