"""Fixed twin: workers receive picklable mp primitives only."""

import multiprocessing


def _worker(queue: "multiprocessing.Queue", n: int) -> None:
    queue.put(n)


def spawn(n: int) -> multiprocessing.Process:
    queue: "multiprocessing.Queue" = multiprocessing.Queue()
    proc = multiprocessing.Process(target=_worker, args=(queue, n))
    proc.start()
    return proc
