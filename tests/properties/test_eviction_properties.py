"""Property-based tests for LRU eviction ordering."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eviction import LruEvictionPolicy

VB_IDS = st.integers(0, 15)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), VB_IDS),
        st.tuples(st.just("touch"), VB_IDS),
        st.tuples(st.just("evict"), st.just(None)),
    ),
    min_size=1,
    max_size=120,
)


class ModelLru:
    """Reference model: an OrderedDict, MRU at the end."""

    def __init__(self):
        self.d = OrderedDict()

    def insert(self, vb):
        self.d[vb] = None

    def touch(self, vb):
        self.d.move_to_end(vb)

    def evict(self):
        return self.d.popitem(last=False)[0]


@given(ops)
@settings(max_examples=200, deadline=None)
def test_matches_reference_model(sequence):
    real, model = LruEvictionPolicy(), ModelLru()
    for op, vb in sequence:
        if op == "insert" and vb not in model.d:
            real.insert(vb)
            model.insert(vb)
        elif op == "touch" and vb in model.d:
            real.touch(vb)
            model.touch(vb)
        elif op == "evict" and model.d:
            assert real.evict_victim() == model.evict()
    assert real.order() == list(model.d)


@given(ops, st.sets(VB_IDS, max_size=4))
@settings(max_examples=150, deadline=None)
def test_victim_selection_respects_exclusions(sequence, exclude):
    policy = LruEvictionPolicy()
    members = set()
    for op, vb in sequence:
        if op == "insert" and vb not in members:
            policy.insert(vb)
            members.add(vb)
        elif op == "touch" and vb in members:
            policy.touch(vb)
    victim = policy.select_victim(exclude=exclude)
    if members - exclude:
        assert victim in members - exclude
        # victim must be the least recent among eligible blocks
        order = policy.order()
        eligible = [v for v in order if v not in exclude]
        assert victim == eligible[0]
    else:
        assert victim is None
