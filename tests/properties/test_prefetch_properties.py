"""Property-based tests for the density prefetcher.

Invariants derived from the algorithm's specification (Section IV-A):
for ANY residency mask and fault set,

* the prefetch set is disjoint from resident and demand pages,
* after fetching, every chosen region's density is total,
* stage one always covers each fault's big page,
* lowering the threshold never shrinks the prefetch set semantics
  (monotonicity at the single-fault level),
* the computation is deterministic and side-effect free.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefetch import TreePrefetcher

LEAVES = 512
BIG = 16

residency_masks = st.lists(
    st.booleans(), min_size=LEAVES, max_size=LEAVES
).map(lambda bits: np.array(bits, dtype=bool))

fault_sets = st.lists(
    st.integers(min_value=0, max_value=LEAVES - 1), min_size=1, max_size=24, unique=True
).map(lambda xs: np.array(sorted(xs), dtype=np.int64))

thresholds = st.integers(min_value=1, max_value=100)


@st.composite
def scenario(draw):
    resident = draw(residency_masks)
    faults = draw(fault_sets)
    # a fault can only happen on a non-resident page
    resident[faults] = False
    return resident, faults


@given(scenario(), thresholds)
@settings(max_examples=150, deadline=None)
def test_prefetch_disjoint_from_resident_and_demand(sc, threshold):
    resident, faults = sc
    decision = TreePrefetcher(threshold=threshold).compute(resident, faults)
    offsets = decision.prefetch_offsets
    assert not resident[offsets].any()
    assert not np.isin(offsets, faults).any()
    assert np.array_equal(offsets, np.unique(offsets))  # sorted unique


@given(scenario())
@settings(max_examples=150, deadline=None)
def test_stage_one_covers_fault_big_pages(sc):
    resident, faults = sc
    decision = TreePrefetcher().compute(resident, faults)
    covered = resident.copy()
    covered[faults] = True
    covered[decision.prefetch_offsets] = True
    for leaf in faults:
        group = slice((leaf // BIG) * BIG, (leaf // BIG + 1) * BIG)
        assert covered[group].all()


@given(scenario(), thresholds)
@settings(max_examples=100, deadline=None)
def test_input_mask_not_mutated(sc, threshold):
    resident, faults = sc
    before = resident.copy()
    TreePrefetcher(threshold=threshold).compute(resident, faults)
    assert np.array_equal(resident, before)


@given(scenario(), thresholds)
@settings(max_examples=100, deadline=None)
def test_deterministic(sc, threshold):
    resident, faults = sc
    pf = TreePrefetcher(threshold=threshold)
    a = pf.compute(resident, faults)
    b = pf.compute(resident, faults)
    assert np.array_equal(a.prefetch_offsets, b.prefetch_offsets)
    assert a.max_region == b.max_region


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_threshold_one_dominates_any_threshold(sc):
    """Threshold 1 (maximally aggressive) fetches a superset of what any
    higher threshold fetches."""
    resident, faults = sc
    low = TreePrefetcher(threshold=1).compute(resident, faults)
    high = TreePrefetcher(threshold=73).compute(resident, faults)
    assert set(high.prefetch_offsets.tolist()) <= set(low.prefetch_offsets.tolist())


@given(scenario(), thresholds)
@settings(max_examples=100, deadline=None)
def test_chosen_regions_exceed_threshold_density(sc, threshold):
    """Every per-fault region of size > big page satisfied the strict
    density inequality at selection time; verify the *final* occupancy
    of each reported max region is total (set-to-max postcondition)."""
    resident, faults = sc
    decision = TreePrefetcher(threshold=threshold).compute(resident, faults)
    final = resident.copy()
    final[faults] = True
    final[decision.prefetch_offsets] = True
    # regions are recorded per fault; each fault's chosen region is full
    for leaf, size in zip(np.sort(faults), decision.region_sizes):
        if size <= BIG:
            continue
        base = (int(leaf) // size) * size
        assert final[base : base + size].all()


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_region_sizes_are_powers_of_two_big_page_or_larger(sc):
    resident, faults = sc
    decision = TreePrefetcher().compute(resident, faults)
    for size in decision.region_sizes:
        assert size >= BIG
        assert size & (size - 1) == 0
