"""Property-based tests for the fault buffer: FIFO, capacity, accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.fault_buffer import FaultBuffer, FaultEntry


def entry(page):
    return FaultEntry(
        page=page, is_write=False, timestamp_ns=0, gpc_id=0, utlb_id=0, stream_id=0
    )


ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1000)),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("flush"), st.none()),
    ),
    min_size=1,
    max_size=150,
)

capacities = st.integers(min_value=1, max_value=32)


@given(ops, capacities)
@settings(max_examples=200, deadline=None)
def test_accounting_identity(sequence, capacity):
    """enqueued == popped + flushed + still-queued, drops separate."""
    buf = FaultBuffer(capacity=capacity, ready_delay_ns=0)
    popped = 0
    for op, page in sequence:
        if op == "push":
            buf.try_push(entry(page))
        elif op == "pop":
            e, _ = buf.pop_ready(10**9)
            popped += e is not None
        else:
            buf.flush()
    assert buf.total_enqueued == popped + buf.total_flushed + len(buf)
    assert len(buf) <= capacity
    assert buf.high_watermark <= capacity


@given(ops, capacities)
@settings(max_examples=150, deadline=None)
def test_fifo_order_preserved(sequence, capacity):
    buf = FaultBuffer(capacity=capacity, ready_delay_ns=0)
    model: list[int] = []
    for op, page in sequence:
        if op == "push":
            if buf.try_push(entry(page)):
                model.append(page)
        elif op == "pop":
            e, _ = buf.pop_ready(10**9)
            if model:
                assert e.page == model.pop(0)
            else:
                assert e is None
        else:
            buf.flush()
            model.clear()
    assert buf.snapshot_pages() == model
