"""Property-based tests for address arithmetic and the address space."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import layout
from repro.mem.address_space import AddressSpace
from repro.units import PAGE_SIZE, PAGES_PER_VABLOCK

pages = st.integers(min_value=0, max_value=2**40)


@given(pages)
@settings(max_examples=200, deadline=None)
def test_page_in_its_own_vablock_span(page):
    vb = layout.vablock_of_page(page)
    lo, hi = layout.page_span_of_vablock(int(vb))
    assert lo <= page < hi


@given(pages)
@settings(max_examples=200, deadline=None)
def test_page_in_its_own_big_page_span(page):
    bp = layout.big_page_of_page(page)
    lo, hi = layout.pages_of_big_page(int(bp))
    assert lo <= page < hi


@given(pages)
@settings(max_examples=200, deadline=None)
def test_byte_page_round_trip(page):
    assert layout.page_of_byte(layout.byte_of_page(page)) == page


@given(st.integers(0, 10**6), st.sampled_from([16, 64, 512, 1024]))
@settings(max_examples=200, deadline=None)
def test_align_up_properties(n, granule):
    aligned = layout.align_up_pages(n, granule)
    assert aligned >= n
    assert aligned % granule == 0
    assert aligned - n < granule


allocation_lists = st.lists(
    st.integers(min_value=1, max_value=8 * 1024 * 1024), min_size=1, max_size=8
)


@given(allocation_lists)
@settings(max_examples=100, deadline=None)
def test_ranges_never_overlap_and_tile_vablocks(sizes):
    space = AddressSpace()
    ranges = [space.malloc_managed(s) for s in sizes]
    # non-overlap and alignment
    cursor = 0
    for rng in ranges:
        assert rng.start_page == cursor
        assert rng.start_page % PAGES_PER_VABLOCK == 0
        cursor = rng.end_page_aligned
    assert space.total_pages == cursor
    # every page maps back to exactly its owning range
    for rng in ranges:
        for probe in {rng.start_page, rng.end_page - 1}:
            assert space.range_of_page(probe) is rng


@given(allocation_lists)
@settings(max_examples=100, deadline=None)
def test_requested_pages_cover_requested_bytes(sizes):
    space = AddressSpace()
    for size in sizes:
        rng = space.malloc_managed(size)
        assert rng.npages * PAGE_SIZE >= size
        assert (rng.npages - 1) * PAGE_SIZE < size
