"""Property-based tests for access-counter eviction against a model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.access_counter_eviction import AccessCounterEviction

N_BLOCKS = 12

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, N_BLOCKS - 1)),
        st.tuples(st.just("access"), st.integers(0, N_BLOCKS - 1)),
        st.tuples(st.just("evict"), st.none()),
    ),
    min_size=1,
    max_size=100,
)


@given(ops, st.integers(0, 8))
@settings(max_examples=150, deadline=None)
def test_membership_parity_under_any_sequence(sequence, protect_window):
    """Victims always come from the member set and bookkeeping never
    drifts, for any protection window."""
    counters = np.zeros(N_BLOCKS, dtype=np.int64)
    policy = AccessCounterEviction(counters, protect_window=protect_window)
    members: set[int] = set()
    for op, vb in sequence:
        if op == "insert" and vb not in members:
            policy.insert(vb)
            members.add(vb)
        elif op == "access" and vb is not None:
            counters[vb] += 1
        elif op == "evict" and members:
            victim = policy.evict_victim()
            assert victim in members
            members.remove(victim)
    assert len(policy) == len(members)
    assert set(policy.order()) == members


@given(ops)
@settings(max_examples=100, deadline=None)
def test_order_sorted_by_temperature(sequence):
    counters = np.zeros(N_BLOCKS, dtype=np.int64)
    policy = AccessCounterEviction(counters, protect_window=0)
    members: set[int] = set()
    for op, vb in sequence:
        if op == "insert" and vb not in members:
            policy.insert(vb)
            members.add(vb)
        elif op == "access" and vb is not None:
            counters[vb] += 1
    order = policy.order()
    temps = [policy.temperature(vb) for vb in order]
    assert temps == sorted(temps)


@given(ops)
@settings(max_examples=100, deadline=None)
def test_unprotected_victim_is_globally_coldest(sequence):
    """With no protection window, the victim is always argmin temp."""
    counters = np.zeros(N_BLOCKS, dtype=np.int64)
    policy = AccessCounterEviction(counters, protect_window=0)
    members: set[int] = set()
    for op, vb in sequence:
        if op == "insert" and vb not in members:
            policy.insert(vb)
            members.add(vb)
        elif op == "access" and vb is not None:
            counters[vb] += 1
        elif op == "evict" and members:
            coldest = min(policy.temperature(m) for m in members)
            victim = policy.evict_victim()
            assert policy_temperature_was(counters, policy, victim, coldest)
            members.remove(victim)


def policy_temperature_was(counters, policy, victim, coldest):
    """Victim's temperature at eviction equalled the member minimum.

    The policy removed the victim already, so recompute its temperature
    from the baseline the test can no longer read - instead verify via
    the invariant that no remaining member is colder than ``coldest``.
    """
    return all(policy.temperature(m) >= coldest for m in policy.order())
