"""Ring re-balance invariants under arbitrary membership churn.

The elastic fleet trusts three properties of the consistent-hash ring
across any join -> leave -> join sequence:

* preference lists never repeat a node (a key's replica set is a set),
* the exact arc shares always partition the key space (sum to 1),
* one join or leave remaps a *bounded* fraction of the key space -
  the minimal-remap property that makes arc migration cheap.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.ring import HashRing

#: enough vnodes to keep single-node share variance well under the
#: 2/N + eps remap bound asserted below.
VNODES = 64
NAMES = [f"n{i}" for i in range(8)]

#: a churn script: (True, name) joins, (False, name) leaves.
churn_ops = st.lists(
    st.tuples(st.booleans(), st.sampled_from(NAMES)), min_size=1, max_size=24
)

sample_keys = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=8, max_size=16),
    min_size=1,
    max_size=8,
    unique=True,
)


def _apply(ring: HashRing, join: bool, name: str) -> HashRing:
    """One membership change, or the unchanged ring when it is a no-op
    (re-joining a member, or removing the last/absent one)."""
    if join:
        return ring if name in ring.nodes else ring.with_node(name)
    if name not in ring.nodes or len(ring) <= 1:
        return ring
    return ring.without_node(name)


@settings(max_examples=200, deadline=None)
@given(ops=churn_ops, keys=sample_keys)
def test_churn_preserves_preference_and_share_invariants(ops, keys):
    ring = HashRing(NAMES[:2], vnodes=VNODES)
    for join, name in ops:
        ring = _apply(ring, join, name)

        prefs = {key: ring.preference(key) for key in keys}
        for key, pref in prefs.items():
            assert len(pref) == len(set(pref)), f"duplicate replica for {key}"
            assert set(pref) == set(ring.nodes)
            assert pref[0] == ring.primary(key)

        shares = ring.shares()
        assert set(shares) == set(ring.nodes)
        assert all(share >= 0.0 for share in shares.values())
        assert abs(sum(shares.values()) - 1.0) < 1e-9


@settings(max_examples=200, deadline=None)
@given(ops=churn_ops)
def test_single_change_remap_volume_is_bounded(ops):
    ring = HashRing(NAMES[:2], vnodes=VNODES)
    for join, name in ops:
        after = _apply(ring, join, name)
        if after is ring:
            continue
        n = max(len(ring), len(after))
        moved = ring.diff_share(after)
        assert 0.0 <= moved <= 2.0 / n + 0.05, (
            f"{'join' if join else 'leave'} of {name} at N={n} "
            f"remapped {moved:.3f} of the key space"
        )
        # and the delta is symmetric: the arc is the arc either way
        assert abs(ring.diff_share(after) - after.diff_share(ring)) < 1e-9
        ring = after


@settings(max_examples=100, deadline=None)
@given(ops=churn_ops, keys=sample_keys)
def test_join_then_leave_is_routing_identity(ops, keys):
    """Adding a member and removing it again restores every route."""
    ring = HashRing(NAMES[:3], vnodes=VNODES)
    for join, name in ops:
        ring = _apply(ring, join, name)
    newcomer = "transient"
    roundtrip = ring.with_node(newcomer).without_node(newcomer)
    assert roundtrip.nodes == ring.nodes
    for key in keys:
        assert roundtrip.primary(key) == ring.primary(key)
        assert roundtrip.preference(key) == ring.preference(key)
    assert ring.diff_share(roundtrip) == 0.0
