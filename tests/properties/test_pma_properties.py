"""Property-based tests for the physical memory allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pma import PhysicalMemoryAllocator
from repro.sim.costmodel import CostModel
from repro.units import MiB, VABLOCK_SIZE

CAPACITY = 64 * MiB
MAX_BLOCKS = CAPACITY // VABLOCK_SIZE

# sequences of reserve (+1) / release (-1) requests
op_sequences = st.lists(st.sampled_from([1, -1]), min_size=1, max_size=200)


def run_sequence(sequence):
    pma = PhysicalMemoryAllocator(CostModel(), CAPACITY)
    held = 0
    for op in sequence:
        if op == 1 and pma.can_reserve(VABLOCK_SIZE):
            pma.reserve(VABLOCK_SIZE)
            held += 1
        elif op == -1 and held:
            pma.release(VABLOCK_SIZE)
            held -= 1
    return pma, held


@given(op_sequences)
@settings(max_examples=200, deadline=None)
def test_conservation_always_holds(sequence):
    pma, held = run_sequence(sequence)
    assert pma.unclaimed_bytes + pma.cache_bytes + pma.used_bytes == CAPACITY
    assert pma.used_bytes == held * VABLOCK_SIZE


@given(op_sequences)
@settings(max_examples=200, deadline=None)
def test_never_over_commits(sequence):
    pma, held = run_sequence(sequence)
    assert held <= MAX_BLOCKS
    assert pma.used_bytes <= CAPACITY


@given(op_sequences)
@settings(max_examples=100, deadline=None)
def test_call_count_bounded_by_chunk_arithmetic(sequence):
    """Proprietary-driver calls can never exceed what chunked refills
    require: ceil(capacity / chunk) over the allocator's lifetime."""
    pma, _ = run_sequence(sequence)
    max_calls = -(-CAPACITY // CostModel().pma_chunk_bytes)
    assert pma.stats.calls <= max_calls


@given(op_sequences)
@settings(max_examples=100, deadline=None)
def test_reservations_after_release_are_cache_hits(sequence):
    """Anything released is reachable without another driver call."""
    pma, held = run_sequence(sequence)
    if held < MAX_BLOCKS and pma.cache_bytes >= VABLOCK_SIZE:
        calls_before = pma.stats.calls
        pma.reserve(VABLOCK_SIZE)
        assert pma.stats.calls == calls_before
