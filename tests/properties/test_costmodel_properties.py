"""Property-based tests for cost-model arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.costmodel import CostModel

sizes = st.integers(min_value=0, max_value=1 << 36)
transfer_counts = st.integers(min_value=1, max_value=1 << 12)


@given(sizes, sizes)
@settings(max_examples=200, deadline=None)
def test_transfer_time_is_monotone_and_superadditive_free(a, b):
    cost = CostModel()
    assert cost.transfer_ns(a + b) >= cost.transfer_ns(max(a, b))
    # wire time is linear up to rounding
    assert abs(cost.transfer_ns(a + b) - cost.transfer_ns(a) - cost.transfer_ns(b)) <= 2


@given(sizes, transfer_counts)
@settings(max_examples=200, deadline=None)
def test_dma_setup_scales_with_transfer_count(nbytes, transfers):
    cost = CostModel()
    base = cost.dma_transfer_ns(nbytes, transfers=1)
    split = cost.dma_transfer_ns(nbytes, transfers=transfers)
    assert split == base + (transfers - 1) * cost.dma_setup_ns


@given(sizes)
@settings(max_examples=200, deadline=None)
def test_explicit_transfer_never_negative_and_monotone(nbytes):
    cost = CostModel()
    t = cost.explicit_copy_ns(nbytes)
    assert t >= cost.memcpy_setup_ns
    assert cost.explicit_copy_ns(nbytes + 4096) >= t


@given(st.integers(min_value=50, max_value=400))
@settings(max_examples=50, deadline=None)
def test_bandwidth_scaling_preserves_fault_anchor(scale_pct):
    """Over realistic link speeds (PCIe3 half-rate .. NVLink-class) the
    isolated-fault estimate stays in a sane band: software costs, not
    wire time, dominate a 4 KB fault."""
    cost = CostModel().with_overrides(
        interconnect_bytes_per_s=int(12e9 * scale_pct / 100)
    )
    est = cost.isolated_fault_estimate_ns()
    assert 25_000 <= est <= 50_000
