"""Property-based tests for residency state under random op sequences."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB

N_VABLOCKS = 4
N_PAGES = N_VABLOCKS * 512


def fresh_state() -> ResidencyState:
    space = AddressSpace()
    space.malloc_managed(N_VABLOCKS * 2 * MiB)
    return ResidencyState(space)


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("resident"),
            st.lists(
                st.integers(0, N_PAGES - 1), min_size=1, max_size=64, unique=True
            ),
            st.booleans(),
        ),
        st.tuples(st.just("evict"), st.integers(0, N_VABLOCKS - 1)),
    ),
    min_size=1,
    max_size=60,
)


@given(ops)
@settings(max_examples=120, deadline=None)
def test_invariants_hold_under_any_op_sequence(sequence):
    state = fresh_state()
    for op in sequence:
        if op[0] == "resident":
            _, pages, write = op
            pages = np.array(pages, dtype=np.int64)
            for vb in np.unique(pages // 512):
                if not state.backed[vb]:
                    state.back_vablock(int(vb))
            state.make_resident(pages, writing=write)
        else:
            _, vb = op
            if state.backed[vb]:
                state.evict_vablock(vb)
    state.check_invariants()


@given(ops)
@settings(max_examples=80, deadline=None)
def test_resident_count_equals_bitmap_popcount(sequence):
    state = fresh_state()
    for op in sequence:
        if op[0] == "resident":
            _, pages, write = op
            pages = np.array(pages, dtype=np.int64)
            for vb in np.unique(pages // 512):
                if not state.backed[vb]:
                    state.back_vablock(int(vb))
            state.make_resident(pages, writing=write)
        elif state.backed[op[1]]:
            state.evict_vablock(op[1])
    assert state.total_resident_pages() == int(state.resident.sum())


@given(
    st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=128, unique=True),
    st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=128, unique=True),
)
@settings(max_examples=80, deadline=None)
def test_make_resident_is_idempotent_and_additive(first, second):
    state = fresh_state()
    for vb in range(N_VABLOCKS):
        state.back_vablock(vb)
    a = np.array(first, dtype=np.int64)
    b = np.array(second, dtype=np.int64)
    n1 = state.make_resident(a)
    n2 = state.make_resident(b)
    assert n1 == len(first)
    assert n2 == np.setdiff1d(b, a).size
    union = np.union1d(a, b)
    assert state.total_resident_pages() == union.size


@given(st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=128, unique=True))
@settings(max_examples=80, deadline=None)
def test_evict_drops_exactly_block_pages(pages):
    state = fresh_state()
    for vb in range(N_VABLOCKS):
        state.back_vablock(vb)
    pages = np.array(pages, dtype=np.int64)
    state.make_resident(pages, writing=True)
    in_block0 = int((pages < 512).sum())
    n_res, n_dirty = state.evict_vablock(0)
    assert n_res == in_block0
    assert n_dirty == in_block0  # all written
    assert state.total_resident_pages() == pages.size - in_block0
