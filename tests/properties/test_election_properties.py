"""Election safety under arbitrary partition/heal schedules.

Drives a small fleet of :class:`ElectionState` machines - pure,
clock-injected, no HTTP - through hypothesis-generated schedules of
time advances, follower polls, membership mints, and symmetric link
cuts/heals, asserting the three properties the self-healing tier
rests on:

* **disjoint mints**: the epoch ranges minted by distinct gateways
  never overlap, i.e. at most one acting primary minted any epoch
  (what ``GET /fleet/elections`` audits assert fleet-wide),
* **monotone journals**: no gateway's journal epoch ever decreases,
* **convergence**: once every link heals and polls resume, the fleet
  settles on exactly one primary and every other gateway follows it.

The schedules stay inside the protocol's documented operating
envelope (``docs/fleet.md``): partitions are *symmetric* (a cut that
severs the primary's publications also severs the polls that would
extend its bound), every follower registers with the initial primary
before the first cut, and the mutation rate is orders of magnitude
below ``epoch_reserve`` and the promotion-offset gaps.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import ElectionState, Role

TTL = 5.0
PROBES = 2
RESERVE = 1024
NAMES = ("gw0", "gw1", "gw2")
PAIRS = ((0, 1), (0, 2), (1, 2))


class _Node:
    """One gateway: an election state machine plus its journal epoch."""

    def __init__(self, index: int, role: Role):
        self.name = NAMES[index]
        self.url = f"http://{self.name}:1"
        self.st = ElectionState(
            self.name,
            role,
            advertise_url=self.url,
            lease_ttl_s=TTL,
            election_probes=PROBES,
            epoch_reserve=RESERVE,
            now=0.0,
        )
        self.epoch = 0

    def mint(self, epoch: int) -> None:
        self.epoch = epoch
        self.st.note_minted(epoch)

    def view(self) -> dict:
        return {
            "epoch": self.epoch,
            "members": [],
            "lease": self.st.lease_for(self.epoch),
        }


class _Fleet:
    def __init__(self):
        self.now = 0.0
        self.nodes = [_Node(0, Role.PRIMARY)] + [
            _Node(i, Role.FOLLOWER) for i in range(1, len(NAMES))
        ]
        self.nodes[0].mint(1)  # the seed epoch
        self.up = {pair: True for pair in PAIRS}
        # steady state before any chaos: every follower registers with
        # (and adopts the lease of) the initial primary.
        for node in self.nodes[1:]:
            node.st.acting_url = self.nodes[0].url
            self.poll(self.nodes.index(node))

    def linked(self, i: int, j: int) -> bool:
        return self.up[tuple(sorted((i, j)))]

    def _target_of(self, node: _Node) -> _Node:
        for other in self.nodes:
            if other is not node and other.url == node.st.acting_url:
                return other
        return self.nodes[0]

    def tick(self, dt: float) -> None:
        self.now += dt

    def poll(self, i: int) -> None:
        """One follower poll round for node ``i`` (no-op for primaries)."""
        node = self.nodes[i]
        if node.st.is_primary():
            return
        target = self._target_of(node)
        j = self.nodes.index(target)
        if self.linked(i, j):
            if target.st.is_primary():
                target.st.note_follower_poll(target.epoch, node.url, self.now)
                view = target.view()
            else:
                # a non-primary target relays the lease it last adopted
                # (the real wait_view follower path), so the poller
                # chases the acting primary instead of counting a probe.
                view = {
                    "epoch": target.epoch,
                    "members": [],
                    "lease": target.st.audit()["lease"],
                }
            node.st.note_view(view, target.url, self.now)
            node.epoch = max(node.epoch, target.epoch)  # higher-epoch-wins
        elif node.st.note_probe_failure(self.now):
            new_epoch = node.st.promotion_epoch(node.epoch)
            node.st.promote(new_epoch, self.now)
            node.mint(new_epoch)

    def mint(self, i: int) -> None:
        """One membership mutation on node ``i`` (join/leave epoch bump)."""
        node = self.nodes[i]
        if node.st.may_mint(node.epoch + 1, self.now):
            node.mint(node.epoch + 1)

    def set_link(self, pair: tuple[int, int], state: bool) -> None:
        self.up[pair] = state

    def heal_and_settle(self) -> None:
        """Heal every link, then run enough watch/poll rounds for the
        demotion cascade (the model of the primary peer-watch loop)."""
        for pair in PAIRS:
            self.up[pair] = True
        for _ in range(len(self.nodes) + 1):
            for node in self.nodes:
                if not node.st.is_primary():
                    continue
                for other in self.nodes:
                    if other is not node and other.epoch > node.epoch:
                        lease = other.st.lease_for(other.epoch)
                        node.st.demote(
                            lease["holder"], lease["url"], other.epoch, self.now
                        )
                        node.epoch = other.epoch
            for i in range(len(self.nodes)):
                self.poll(i)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("tick"), st.floats(min_value=0.1, max_value=3.0)),
        st.tuples(st.just("poll"), st.integers(0, len(NAMES) - 1)),
        st.tuples(st.just("mint"), st.integers(0, len(NAMES) - 1)),
        st.tuples(st.just("cut"), st.sampled_from(PAIRS)),
        st.tuples(st.just("heal"), st.sampled_from(PAIRS)),
    ),
    min_size=1,
    max_size=40,
)


def _merged_minted(fleet: _Fleet) -> dict[str, list[list[int]]]:
    return {n.name: n.st.audit()["minted"] for n in fleet.nodes}


def _assert_disjoint(minted: dict[str, list[list[int]]]) -> None:
    owners: dict[int, str] = {}
    for name, ranges in minted.items():
        for lo, hi in ranges:
            for epoch in range(lo, hi + 1):
                assert epoch not in owners, (
                    f"epoch {epoch} minted by both {owners[epoch]} and {name}"
                )
                owners[epoch] = name


def _run(fleet: _Fleet, schedule) -> None:
    previous = {n.name: n.epoch for n in fleet.nodes}
    for op, arg in schedule:
        if op == "tick":
            fleet.tick(arg)
        elif op == "poll":
            fleet.poll(arg)
        elif op == "mint":
            fleet.mint(arg)
        elif op == "cut":
            fleet.set_link(arg, False)
        elif op == "heal":
            fleet.set_link(arg, True)
        for node in fleet.nodes:
            assert node.epoch >= previous[node.name], (
                f"{node.name} journal epoch went backwards"
            )
            previous[node.name] = node.epoch
        _assert_disjoint(_merged_minted(fleet))


@settings(max_examples=200, deadline=None)
@given(schedule=ops)
def test_minted_epochs_disjoint_and_monotone(schedule):
    fleet = _Fleet()
    _run(fleet, schedule)


@settings(max_examples=200, deadline=None)
@given(schedule=ops)
def test_healed_fleet_converges_to_one_primary(schedule):
    fleet = _Fleet()
    _run(fleet, schedule)
    fleet.heal_and_settle()
    primaries = [n for n in fleet.nodes if n.st.is_primary()]
    assert len(primaries) == 1, (
        f"fleet did not converge: {[n.name for n in primaries]}"
    )
    winner = primaries[0]
    assert winner.epoch == max(n.epoch for n in fleet.nodes)
    # every follower's adopted lease names the surviving primary
    for node in fleet.nodes:
        if node is winner:
            continue
        assert node.epoch == winner.epoch
        lease = node.st.audit()["lease"]
        assert lease is not None and lease["holder"] == winner.name
    _assert_disjoint(_merged_minted(fleet))


@settings(max_examples=200, deadline=None)
@given(schedule=ops)
def test_fenced_primary_never_outmints_its_bound(schedule):
    """A primary that has advertised a bound never mints past it, and
    every promotion epoch clears every bound its holder ever saw."""
    fleet = _Fleet()
    _run(fleet, schedule)
    for node in fleet.nodes:
        audit = node.st.audit()
        bound = audit["promised_bound"]
        if node.st.is_primary() and bound is not None:
            assert all(hi <= bound for _, hi in audit["minted"]), (
                f"{node.name} minted past its advertised bound {bound}"
            )
        for transition in audit["transitions"]:
            if transition["event"] == "promoted":
                assert transition["epoch"] > RESERVE, (
                    "promotion epoch did not clear the reserve window"
                )
