"""Metamorphic properties of whole driver runs (hypothesis-driven).

These treat the simulator as a black box and assert relations that must
hold across configuration changes:

* work conservation: every unique touched page is serviced exactly once
  in undersubscribed no-prefetch runs, for ANY batch size, replay
  policy, occupancy, or seed;
* final-state equivalence: those knobs change *when* things happen,
  never *what* is resident at the end;
* prefetching only reduces driver-observed faults, never increases
  accesses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import DriverConfig, UvmDriver
from repro.core.replay import ReplayPolicyKind
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.units import MiB

N_PAGES = 1024  # 4 MiB of data on a 16 MiB device


def run_once(
    seed: int,
    batch_size: int,
    policy: ReplayPolicyKind,
    max_active: int,
    prefetch: bool,
    page_order: np.ndarray,
):
    space = AddressSpace()
    buf = space.malloc_managed(N_PAGES * 4096)
    streams = [
        WarpStream(i, np.array([buf.start_page + int(p)], dtype=np.int64))
        for i, p in enumerate(page_order)
    ]
    driver = UvmDriver(
        space=space,
        streams=streams,
        driver_config=DriverConfig(
            batch_size=batch_size, replay_policy=policy, prefetch_enabled=prefetch
        ),
        gpu_config=GpuDeviceConfig(memory_bytes=16 * MiB, max_active_streams=max_active),
        rng=SimRng(seed),
    )
    return driver, driver.run()


config_strategy = st.tuples(
    st.integers(0, 2**16),  # seed
    st.sampled_from([16, 64, 256, 1024]),  # batch size
    st.sampled_from(list(ReplayPolicyKind)),  # replay policy
    st.sampled_from([64, 512, 4096]),  # occupancy
)


@given(config_strategy)
@settings(max_examples=15, deadline=None)
def test_work_conservation_without_prefetch(cfg):
    seed, batch, policy, occupancy = cfg
    order = SimRng(seed).permutation(N_PAGES)
    driver, result = run_once(seed, batch, policy, occupancy, False, order)
    assert result.faults_serviced == N_PAGES
    assert result.counters["gpu.accesses"] == N_PAGES
    assert driver.residency.resident[:N_PAGES].all()
    driver.residency.check_invariants()


@given(config_strategy)
@settings(max_examples=10, deadline=None)
def test_final_state_independent_of_driver_knobs(cfg):
    seed, batch, policy, occupancy = cfg
    order = SimRng(seed).permutation(N_PAGES)
    driver_a, _ = run_once(seed, batch, policy, occupancy, True, order)
    driver_b, _ = run_once(seed, 256, ReplayPolicyKind.BATCH_FLUSH, 2048, True, order)
    assert np.array_equal(driver_a.residency.resident, driver_b.residency.resident)
    assert np.array_equal(driver_a.gpu_table.mapped, driver_b.gpu_table.mapped)


@given(st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_prefetch_never_increases_fault_reads(seed):
    order = SimRng(seed).permutation(N_PAGES)
    _, with_pf = run_once(seed, 256, ReplayPolicyKind.BATCH_FLUSH, 2048, True, order)
    _, without = run_once(seed, 256, ReplayPolicyKind.BATCH_FLUSH, 2048, False, order)
    assert with_pf.faults_read <= without.faults_read
    assert with_pf.counters["gpu.accesses"] == without.counters["gpu.accesses"]


@given(st.integers(0, 2**16), st.integers(1, 99))
@settings(max_examples=10, deadline=None)
def test_breakdown_always_covers_clock(seed, threshold):
    order = SimRng(seed).permutation(N_PAGES)
    space = AddressSpace()
    buf = space.malloc_managed(N_PAGES * 4096)
    streams = [
        WarpStream(i, np.array([buf.start_page + int(p)], dtype=np.int64))
        for i, p in enumerate(order)
    ]
    driver = UvmDriver(
        space=space,
        streams=streams,
        driver_config=DriverConfig(density_threshold=threshold),
        gpu_config=GpuDeviceConfig(memory_bytes=16 * MiB),
        rng=SimRng(seed),
    )
    result = driver.run()
    assert result.breakdown().total_ns == result.total_time_ns
