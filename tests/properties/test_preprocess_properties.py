"""Property-based tests for batch pre-processing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import FaultBatch
from repro.core.preprocess import preprocess_batch
from repro.gpu.fault_buffer import FaultEntry
from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB

N_PAGES = 2048  # 4 VABlocks


def fresh_residency(resident_pages):
    space = AddressSpace()
    space.malloc_managed(N_PAGES * 4096)
    state = ResidencyState(space)
    resident_pages = np.asarray(sorted(resident_pages), dtype=np.int64)
    if resident_pages.size:
        for vb in np.unique(resident_pages // 512):
            state.back_vablock(int(vb))
        state.make_resident(resident_pages)
    return state


entries_strategy = st.lists(
    st.tuples(
        st.integers(0, N_PAGES - 1),  # page
        st.booleans(),  # write
        st.integers(0, 79),  # sm
    ),
    min_size=1,
    max_size=256,
)

resident_strategy = st.sets(st.integers(0, N_PAGES - 1), max_size=64)


def make_batch(raw):
    return FaultBatch(
        entries=[
            FaultEntry(
                page=p,
                is_write=w,
                timestamp_ns=0,
                gpc_id=0,
                utlb_id=0,
                stream_id=i,
                sm_id=sm,
            )
            for i, (p, w, sm) in enumerate(raw)
        ]
    )


@given(entries_strategy, resident_strategy)
@settings(max_examples=150, deadline=None)
def test_partition_identity(raw, resident):
    """read = unique-serviced + duplicates, always."""
    state = fresh_residency(resident)
    pre = preprocess_batch(make_batch(raw), state)
    assert pre.n_read == len(raw)
    assert pre.n_unique + pre.n_duplicate == pre.n_read
    assert int(pre.entry_duplicate.sum()) == pre.n_duplicate


@given(entries_strategy, resident_strategy)
@settings(max_examples=150, deadline=None)
def test_bins_cover_exactly_nonresident_unique_pages(raw, resident):
    state = fresh_residency(resident)
    pre = preprocess_batch(make_batch(raw), state)
    binned = np.concatenate([b.pages for b in pre.bins]) if pre.bins else np.empty(0)
    expected = {p for p, _, _ in raw} - set(resident)
    assert set(binned.tolist()) == expected
    assert len(set(binned.tolist())) == binned.size  # no duplicates


@given(entries_strategy, resident_strategy)
@settings(max_examples=100, deadline=None)
def test_bins_sorted_and_homogeneous(raw, resident):
    state = fresh_residency(resident)
    pre = preprocess_batch(make_batch(raw), state)
    vb_order = [b.vablock_id for b in pre.bins]
    assert vb_order == sorted(vb_order)
    for b in pre.bins:
        assert (b.pages // 512 == b.vablock_id).all()
        assert (np.diff(b.pages) > 0).all()
        assert b.writes.shape == b.pages.shape
        assert b.sm_ids.shape == b.pages.shape


@given(entries_strategy)
@settings(max_examples=100, deadline=None)
def test_write_intent_is_or_of_duplicates(raw):
    state = fresh_residency(set())
    pre = preprocess_batch(make_batch(raw), state)
    intent = {}
    for p, w, _ in raw:
        intent[p] = intent.get(p, False) or w
    for b in pre.bins:
        for page, write in zip(b.pages, b.writes):
            assert bool(write) == intent[int(page)]
