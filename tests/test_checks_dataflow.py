"""Unit tests for the taint engine on small synthetic trees."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.checks.dataflow import CallSink, TaintEngine, TaintSpec
from repro.checks.graph import ProjectGraph


def engine_for(root: Path, files: dict[str, str], spec: TaintSpec) -> TaintEngine:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return TaintEngine(ProjectGraph.build(root), spec)


def basic_spec(**overrides) -> TaintSpec:
    params = dict(
        call_sources={"time.time": "wallclock"},
        call_sinks=(CallSink(name="seed", attrs=("set_seed",)),),
    )
    params.update(overrides)
    return TaintSpec(**params)


def test_direct_flow(tmp_path):
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                import time

                def bad(rng):
                    now = time.time()
                    rng.set_seed(now)
                """,
        },
        basic_spec(),
    )
    flows = engine.run()
    assert [(f.sink, f.labels) for f in flows] == [
        ("seed", frozenset({"wallclock"}))
    ]


def test_interprocedural_return_flow(tmp_path):
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/a.py": """
                import time

                def entropy():
                    return time.time()

                def indirect():
                    return entropy()
                """,
            "src/repro/b.py": """
                from repro.a import indirect

                def bad(rng):
                    rng.set_seed(indirect())
                """,
        },
        basic_spec(),
    )
    flows = engine.run()
    assert len(flows) == 1
    assert flows[0].relpath == "src/repro/b.py"
    assert flows[0].labels == frozenset({"wallclock"})


def test_param_flow_reaches_sink_inside_callee(tmp_path):
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                import time

                def seed_it(rng, value):
                    rng.set_seed(value)

                def bad(rng):
                    seed_it(rng, time.time())
                """,
        },
        basic_spec(),
    )
    flows = engine.run()
    # the flow is reported at the call site that supplied the taint.
    assert any(f.function.endswith(".bad") for f in flows)


def test_sanitizer_strips_labels(tmp_path):
    spec = basic_spec(
        sanitizers={"repro.m.scrub": None},
    )
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                import time

                def scrub(x):
                    return 0

                def ok(rng):
                    rng.set_seed(scrub(time.time()))
                """,
        },
        spec,
    )
    assert engine.run() == []


def test_kwarg_launder_sanctions_timestamp_fields(tmp_path):
    def launder(name, labels):
        if name.endswith("_at"):
            return labels - {"wallclock"}
        return labels

    spec = basic_spec(
        call_sinks=(CallSink(name="record", attrs=("make",)),),
        kwarg_launder=launder,
    )
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                import time

                def ok(factory):
                    factory.make(submitted_at=time.time())

                def bad(factory):
                    factory.make(seed=time.time())
                """,
        },
        spec,
    )
    flows = engine.run()
    assert len(flows) == 1
    assert flows[0].function.endswith(".bad")


def test_mix_hook_flags_cross_unit_arithmetic(tmp_path):
    def mix(left, right, op):
        if op == "Add" and left and right and not (left & right):
            return left | right
        return None

    spec = TaintSpec(
        name_sources={
            "repro.u.NS": "ns",
            "repro.u.KB": "bytes",
        },
        mix=mix,
        propagate_unknown_calls=False,
    )
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/u.py": "NS = 1\nKB = 1024\n",
            "src/repro/m.py": """
                from repro.u import NS, KB

                def bad():
                    return 5 * NS + 2 * KB

                def ok():
                    return 5 * NS + 7 * NS
                """,
        },
        spec,
    )
    flows = engine.run()
    assert [(f.sink, f.labels) for f in flows] == [
        ("mix", frozenset({"ns", "bytes"}))
    ]


def test_unordered_iteration_grants_iter_order_label(tmp_path):
    spec = TaintSpec(
        call_sinks=(CallSink(name="digest", attrs=("update",)),),
        unordered_labels=frozenset({"unordered"}),
        iter_order_label="iter-order",
        set_literal_label="unordered",
        sanitizers={"builtins.sorted": frozenset({"unordered", "iter-order"})},
    )
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                def bad(h, items):
                    for key in {1, 2, 3}:
                        h.update(key)

                def ok(h, items):
                    for key in sorted({1, 2, 3}):
                        h.update(key)
                """,
        },
        spec,
    )
    flows = engine.run()
    assert len(flows) == 1
    assert flows[0].function.endswith(".bad")
    assert "iter-order" in flows[0].labels


def test_loop_carried_taint_needs_second_pass(tmp_path):
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                import time

                def bad(rng, n):
                    acc = 0
                    for _ in range(n):
                        rng.set_seed(acc)
                        acc = time.time()
                """,
        },
        basic_spec(),
    )
    flows = engine.run()
    assert len(flows) == 1


def test_branches_merge_by_union(tmp_path):
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                import time

                def bad(rng, flag):
                    value = 0
                    if flag:
                        value = time.time()
                    rng.set_seed(value)
                """,
        },
        basic_spec(),
    )
    assert len(engine.run()) == 1


def test_summaries_converge_on_recursion(tmp_path):
    engine = engine_for(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                import time

                def ping(n):
                    if n <= 0:
                        return time.time()
                    return pong(n - 1)

                def pong(n):
                    return ping(n)

                def bad(rng):
                    rng.set_seed(ping(3))
                """,
        },
        basic_spec(),
    )
    flows = engine.run()
    assert len(flows) == 1
    assert flows[0].labels == frozenset({"wallclock"})
