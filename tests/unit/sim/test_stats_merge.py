"""Merge semantics of CategoryTimer/CounterSet, and latency summaries.

The sweep executor and the service both aggregate per-run accumulators
by merging; these tests pin the semantics: disjoint paths union,
overlapping paths sum (ns *and* operation counts), and merging an empty
accumulator is the identity.
"""

import pytest

from repro.errors import TraceError
from repro.sim.stats import CategoryTimer, CounterSet, LatencyStats, percentile


def timer(charges):
    t = CategoryTimer()
    for path, ns, count in charges:
        t.charge(path, ns, count=count)
    return t


class TestCategoryTimerMerge:
    def test_disjoint_paths_union(self):
        a = timer([("preprocess", 10, 1)])
        b = timer([("service.map", 20, 2)])
        a.merge(b)
        assert a.as_dict() == {"preprocess": 10, "service.map": 20}
        assert a.count("service.map") == 2

    def test_overlapping_paths_sum_ns_and_counts(self):
        a = timer([("service.map", 10, 3), ("service.migrate", 5, 1)])
        b = timer([("service.map", 7, 2)])
        a.merge(b)
        assert a.leaf_ns("service.map") == 17
        assert a.count("service.map") == 5
        assert a.leaf_ns("service.migrate") == 5

    def test_merge_empty_is_identity(self):
        a = timer([("service.map", 10, 1), ("replay_policy", 4, 1)])
        before = (a.as_dict(), a.total_ns(), a.count())
        a.merge(CategoryTimer())
        assert (a.as_dict(), a.total_ns(), a.count()) == before

    def test_merge_into_empty_copies(self):
        a = CategoryTimer()
        b = timer([("service.map", 10, 2)])
        a.merge(b)
        assert a.as_dict() == b.as_dict()

    def test_hierarchical_totals_after_merge(self):
        a = timer([("service.map", 10, 1)])
        a.merge(timer([("service.migrate", 30, 1), ("preprocess", 2, 1)]))
        assert a.total_ns("service") == 40
        assert a.total_ns() == 42

    def test_merge_does_not_mutate_source(self):
        a = timer([("service.map", 10, 1)])
        b = timer([("service.map", 7, 1)])
        a.merge(b)
        assert b.leaf_ns("service.map") == 7

    def test_breakdown_consistent_after_merge(self):
        a = timer([("preprocess", 10, 1), ("service.map", 20, 1)])
        a.merge(timer([("service.map", 20, 1), ("mystery", 5, 1)]))
        breakdown = a.breakdown(("preprocess", "service"))
        assert breakdown.rows == {"preprocess": 10, "service": 40}
        assert breakdown.other_ns == 5


class TestCounterSetMerge:
    def test_disjoint_and_overlapping(self):
        a = CounterSet()
        a.add("faults.read", 3)
        b = CounterSet()
        b.add("faults.read", 2)
        b.add("evictions", 1)
        a.merge(b)
        assert a.as_dict() == {"faults.read": 5, "evictions": 1}

    def test_merge_empty_is_identity(self):
        a = CounterSet()
        a.add("faults.read", 3)
        a.merge(CounterSet())
        assert a.as_dict() == {"faults.read": 3}

    def test_repeated_merge_doubles_totals(self):
        a = CounterSet()
        b = CounterSet()
        b.add("faults.read", 4)
        a.merge(b)
        a.merge(b)
        assert a.get("faults.read") == 8


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_sample(self):
        assert percentile([42.0], 95) == 42.0

    def test_interpolation(self):
        values = [0.0, 10.0, 20.0, 30.0]
        assert percentile(values, 50) == 15.0
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 30.0

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            percentile([1.0], 101)


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.n == 0
        assert stats.as_dict()["p95_us"] == 0.0

    def test_summary(self):
        stats = LatencyStats.from_samples([1000.0 * v for v in range(1, 101)])
        assert stats.n == 100
        assert stats.mean_ns == pytest.approx(50500.0)
        assert stats.p50_ns == pytest.approx(50500.0)
        assert stats.p95_ns == pytest.approx(95050.0)
        assert stats.max_ns == 100000.0

    def test_unsorted_input_ok(self):
        assert LatencyStats.from_samples([30.0, 10.0, 20.0]).p50_ns == 20.0
