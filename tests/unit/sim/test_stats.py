"""Unit tests for category timers and counters."""

import pytest

from repro.errors import TraceError
from repro.sim.stats import PAPER_CATEGORIES, CategoryTimer, CounterSet


class TestCategoryTimer:
    def test_charge_accumulates(self):
        timer = CategoryTimer()
        timer.charge("service.map", 100)
        timer.charge("service.map", 50)
        assert timer.leaf_ns("service.map") == 150

    def test_prefix_totals_include_descendants(self):
        timer = CategoryTimer()
        timer.charge("service.map", 100)
        timer.charge("service.migrate", 200)
        timer.charge("service", 10)
        assert timer.total_ns("service") == 310

    def test_prefix_does_not_match_partial_names(self):
        timer = CategoryTimer()
        timer.charge("service_extra", 99)
        assert timer.total_ns("service") == 0

    def test_total_without_prefix(self):
        timer = CategoryTimer()
        timer.charge("a", 1)
        timer.charge("b.c", 2)
        assert timer.total_ns() == 3

    def test_counts(self):
        timer = CategoryTimer()
        timer.charge("service.map", 100, count=16)
        timer.charge("service.map", 100, count=4)
        assert timer.count("service.map") == 20

    def test_negative_charge_rejected(self):
        with pytest.raises(TraceError):
            CategoryTimer().charge("x", -1)

    def test_empty_path_rejected(self):
        with pytest.raises(TraceError):
            CategoryTimer().charge("", 1)

    def test_merge(self):
        a, b = CategoryTimer(), CategoryTimer()
        a.charge("x", 1)
        b.charge("x", 2)
        b.charge("y", 3)
        a.merge(b)
        assert a.leaf_ns("x") == 3
        assert a.leaf_ns("y") == 3

    def test_breakdown_other_captures_remainder(self):
        timer = CategoryTimer()
        timer.charge("preprocess.batch", 100)
        timer.charge("service.map", 200)
        timer.charge("init", 50)
        bd = timer.breakdown(PAPER_CATEGORIES)
        assert bd.rows["preprocess"] == 100
        assert bd.rows["service"] == 200
        assert bd.other_ns == 50
        assert bd.total_ns == 350

    def test_breakdown_fraction(self):
        timer = CategoryTimer()
        timer.charge("preprocess", 25)
        timer.charge("service", 75)
        bd = timer.breakdown(PAPER_CATEGORIES)
        assert bd.fraction("service") == 0.75

    def test_render_contains_rows(self):
        timer = CategoryTimer()
        timer.charge("service", 1_000_000)
        text = timer.breakdown(PAPER_CATEGORIES).render()
        assert "service" in text
        assert "1000.0 us" in text


class TestCounterSet:
    def test_add_and_get(self):
        c = CounterSet()
        c.add("faults.read", 5)
        c.add("faults.read")
        assert c["faults.read"] == 6

    def test_missing_counter_is_zero(self):
        assert CounterSet()["nope"] == 0

    def test_iteration_sorted(self):
        c = CounterSet()
        c.add("b", 2)
        c.add("a", 1)
        assert list(c) == [("a", 1), ("b", 2)]

    def test_merge(self):
        a, b = CounterSet(), CounterSet()
        a.add("x", 1)
        b.add("x", 2)
        a.merge(b)
        assert a["x"] == 3

    def test_empty_name_rejected(self):
        with pytest.raises(TraceError):
            CounterSet().add("")
