"""Unit tests for seeded randomness."""

import numpy as np

from repro.sim.rng import SimRng


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = SimRng(7).integers(0, 1000, size=50)
        b = SimRng(7).integers(0, 1000, size=50)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SimRng(7).integers(0, 1 << 30, size=50)
        b = SimRng(8).integers(0, 1 << 30, size=50)
        assert not np.array_equal(a, b)

    def test_fork_is_stable_by_name(self):
        a = SimRng(7).fork("scheduler").integers(0, 1 << 30, size=20)
        b = SimRng(7).fork("scheduler").integers(0, 1 << 30, size=20)
        assert np.array_equal(a, b)

    def test_forks_are_independent_streams(self):
        root = SimRng(7)
        a = root.fork("a").integers(0, 1 << 30, size=20)
        b = root.fork("b").integers(0, 1 << 30, size=20)
        assert not np.array_equal(a, b)

    def test_fork_independent_of_draw_order(self):
        """Drawing from the parent must not perturb a named child."""
        r1 = SimRng(7)
        r1.integers(0, 100, size=10)
        child1 = r1.fork("x").integers(0, 1 << 30, size=10)
        child2 = SimRng(7).fork("x").integers(0, 1 << 30, size=10)
        assert np.array_equal(child1, child2)


class TestJitterOrder:
    def test_is_permutation(self):
        order = SimRng(3).jitter_order(100, strength=0.2)
        assert sorted(order.tolist()) == list(range(100))

    def test_zero_strength_is_identity(self):
        order = SimRng(3).jitter_order(50, strength=0.0)
        assert np.array_equal(order, np.arange(50))

    def test_zero_window_is_identity(self):
        order = SimRng(3).jitter_order(50, window=0.0)
        assert np.array_equal(order, np.arange(50))

    def test_empty(self):
        assert SimRng(3).jitter_order(0).size == 0

    def test_mostly_ascending_with_small_window(self):
        """Small absolute windows keep elements near their slot."""
        order = SimRng(3).jitter_order(10_000, window=20.0)
        displacement = np.abs(order - np.arange(10_000))
        assert displacement.mean() < 100

    def test_large_window_scrambles(self):
        order = SimRng(3).jitter_order(1000, window=1e6)
        displacement = np.abs(order - np.arange(1000))
        assert displacement.mean() > 100

    def test_permutation_property_with_window(self):
        order = SimRng(11).jitter_order(257, window=13.0)
        assert sorted(order.tolist()) == list(range(257))
