"""Unit tests for the simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(500).now == 500

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now == 350

    def test_advance_returns_new_time(self):
        assert SimClock().advance(42) == 42

    def test_advance_rounds_fractional(self):
        clock = SimClock()
        clock.advance(10.6)
        assert clock.now == 11

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-5)

    def test_advance_to_forward(self):
        clock = SimClock()
        clock.advance_to(1000)
        assert clock.now == 1000

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(77)
        clock.advance_to(77)
        assert clock.now == 77

    def test_advance_to_past_rejected(self):
        clock = SimClock(100)
        with pytest.raises(SimulationError):
            clock.advance_to(99)

    def test_now_us(self):
        clock = SimClock()
        clock.advance(2500)
        assert clock.now_us == 2.5

    def test_reset(self):
        clock = SimClock()
        clock.advance(123)
        clock.reset()
        assert clock.now == 0
