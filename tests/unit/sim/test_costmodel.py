"""Unit tests for the calibrated cost model.

The calibration tests pin the defaults to the paper's published anchor
numbers so a careless constant edit cannot silently break every
experiment's regime.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sim.costmodel import NVLINK_CLASS, TITAN_V_PCIE3, CostModel
from repro.units import GiB, KiB, MiB, PAGE_SIZE


class TestTransfers:
    def test_transfer_time_scales_with_bytes(self):
        cost = CostModel()
        assert cost.transfer_ns(2 * MiB) == pytest.approx(
            2 * cost.transfer_ns(1 * MiB), abs=1
        )

    def test_transfer_matches_bandwidth(self):
        cost = CostModel(interconnect_bytes_per_s=12_000_000_000)
        # 12 GB/s -> 1 GB takes 1/12 s
        assert cost.transfer_ns(12_000_000_000) == pytest.approx(1e9)

    def test_dma_setup_charged_per_transfer(self):
        cost = CostModel()
        one = cost.dma_transfer_ns(1 * MiB, transfers=1)
        four = cost.dma_transfer_ns(1 * MiB, transfers=4)
        assert four - one == 3 * cost.dma_setup_ns

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().transfer_ns(-1)

    def test_zero_transfers_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().dma_transfer_ns(4096, transfers=0)


class TestExplicitBaseline:
    def test_explicit_copy_includes_launch(self):
        cost = CostModel()
        assert cost.explicit_copy_ns(0) == cost.memcpy_setup_ns

    def test_multi_allocation_copies(self):
        cost = CostModel()
        assert (
            cost.explicit_copy_ns(1 * MiB, calls=3)
            == cost.explicit_copy_ns(1 * MiB) + 2 * cost.memcpy_setup_ns
        )


class TestPaperCalibration:
    """Defaults must land inside the paper's published anchors."""

    def test_isolated_fault_in_30_to_45_us_band(self):
        est = CostModel().isolated_fault_estimate_ns()
        assert 30_000 <= est <= 45_000, f"isolated fault {est / 1000:.1f}us off-anchor"

    def test_session_floor_in_400_600_us_band(self):
        """Session base + one small service pass lands in the floor band."""
        cost = CostModel()
        floor = cost.session_base_ns + cost.isolated_fault_estimate_ns() + cost.pma_call_ns
        assert 380_000 <= floor <= 620_000

    def test_interconnect_is_pcie3_class(self):
        assert 10e9 <= CostModel().interconnect_bytes_per_s <= 16e9

    def test_presets_exist(self):
        assert TITAN_V_PCIE3.interconnect_bytes_per_s < NVLINK_CLASS.interconnect_bytes_per_s


class TestValidation:
    def test_pma_chunk_must_be_page_aligned(self):
        with pytest.raises(ConfigurationError):
            CostModel(pma_chunk_bytes=PAGE_SIZE + 1)

    def test_positive_fields_enforced(self):
        with pytest.raises(ConfigurationError):
            CostModel(interconnect_bytes_per_s=0)

    def test_with_overrides(self):
        tweaked = CostModel().with_overrides(replay_issue_ns=1)
        assert tweaked.replay_issue_ns == 1
        assert CostModel().replay_issue_ns != 1
