"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimClock())


class TestScheduling:
    def test_schedule_and_run(self, queue):
        fired = []
        queue.schedule_at(100, fired.append, "a")
        assert queue.run_next()
        assert fired == ["a"]
        assert queue.clock.now == 100

    def test_events_fire_in_time_order(self, queue):
        fired = []
        queue.schedule_at(300, fired.append, 3)
        queue.schedule_at(100, fired.append, 1)
        queue.schedule_at(200, fired.append, 2)
        queue.run_all()
        assert fired == [1, 2, 3]

    def test_ties_break_by_insertion_order(self, queue):
        fired = []
        queue.schedule_at(50, fired.append, "first")
        queue.schedule_at(50, fired.append, "second")
        queue.run_all()
        assert fired == ["first", "second"]

    def test_schedule_in_is_relative(self, queue):
        queue.clock.advance(1000)
        ev = queue.schedule_in(500, lambda _: None)
        assert ev.time_ns == 1500

    def test_scheduling_in_past_rejected(self, queue):
        queue.clock.advance(100)
        with pytest.raises(SimulationError):
            queue.schedule_at(50, lambda _: None)

    def test_negative_delay_rejected(self, queue):
        with pytest.raises(SimulationError):
            queue.schedule_in(-1, lambda _: None)


class TestCancellation:
    def test_cancelled_event_is_skipped(self, queue):
        fired = []
        ev = queue.schedule_at(10, fired.append, "x")
        queue.schedule_at(20, fired.append, "y")
        ev.cancel()
        queue.run_all()
        assert fired == ["y"]

    def test_len_ignores_cancelled(self, queue):
        ev = queue.schedule_at(10, lambda _: None)
        queue.schedule_at(20, lambda _: None)
        assert len(queue) == 2
        ev.cancel()
        assert len(queue) == 1


class TestRunUntil:
    def test_run_until_dispatches_only_due_events(self, queue):
        fired = []
        queue.schedule_at(10, fired.append, 1)
        queue.schedule_at(20, fired.append, 2)
        queue.schedule_at(30, fired.append, 3)
        count = queue.run_until(20)
        assert count == 2
        assert fired == [1, 2]
        assert queue.clock.now == 20

    def test_run_until_advances_clock_past_last_event(self, queue):
        queue.schedule_at(5, lambda _: None)
        queue.run_until(100)
        assert queue.clock.now == 100

    def test_events_scheduled_during_dispatch(self, queue):
        fired = []

        def chain(payload):
            fired.append(payload)
            if payload < 3:
                queue.schedule_in(10, chain, payload + 1)

        queue.schedule_at(0, chain, 1)
        queue.run_all()
        assert fired == [1, 2, 3]
        assert queue.clock.now == 20

    def test_runaway_guard(self, queue):
        def rearm(_):
            queue.schedule_in(1, rearm)

        queue.schedule_at(0, rearm)
        with pytest.raises(SimulationError):
            queue.run_all(max_events=100)

    def test_peek_time(self, queue):
        assert queue.peek_time() is None
        queue.schedule_at(42, lambda _: None)
        assert queue.peek_time() == 42
