"""Unit tests for event-queue snapshots and the simulation checkpointer."""

import pickle

import pytest

from repro.errors import CheckpointError, SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import (
    CHECKPOINT_VERSION,
    EventQueue,
    SimulationCheckpointer,
)


class TestEventQueueSnapshot:
    def test_round_trip_preserves_order_and_counts(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule_at(300, fired.append, 3)
        queue.schedule_at(100, fired.append, 1)
        queue.schedule_at(200, fired.append, 2)
        snap = queue.snapshot()

        other = EventQueue(clock)
        other.restore(snap)
        assert len(other) == 3
        other.run_all()
        assert fired == [1, 2, 3]
        assert other.dispatched == snap.dispatched + 3

    def test_seq_tiebreak_replays_identically(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        # same timestamp: insertion order is the only tie-break
        queue.schedule_at(50, fired.append, "first")
        queue.schedule_at(50, fired.append, "second")
        snap = queue.snapshot()
        restored = EventQueue(SimClock())
        restored.restore(snap)
        restored.run_all()
        assert fired == ["first", "second"]

    def test_new_events_after_restore_continue_seq(self):
        clock = SimClock()
        queue = EventQueue(clock)
        queue.schedule_at(50, lambda _: None)
        snap = queue.snapshot()
        restored = EventQueue(SimClock())
        restored.restore(snap)
        ev = restored.schedule_at(50, lambda _: None)
        assert ev.seq == snap.next_seq

    def test_cancelled_events_dropped_from_snapshot(self):
        queue = EventQueue(SimClock())
        keep = []
        queue.schedule_at(10, keep.append, "keep")
        queue.schedule_at(20, keep.append, "cancelled").cancel()
        snap = queue.snapshot()
        assert len(snap.events) == 1
        restored = EventQueue(SimClock())
        restored.restore(snap)
        restored.run_all()
        assert keep == ["keep"]

    def test_restore_rejects_events_in_the_past(self):
        queue = EventQueue(SimClock())
        queue.schedule_at(10, lambda _: None)
        snap = queue.snapshot()
        late_clock = SimClock()
        late_clock.advance_to(100)
        stale = EventQueue(late_clock)
        with pytest.raises(SimulationError):
            stale.restore(snap)


class TestSimulationCheckpointer:
    def test_cadence(self, tmp_path):
        ck = SimulationCheckpointer(tmp_path / "c.ckpt", every_phases=3)
        saved = [ck.maybe_save({"i": i}) for i in range(7)]
        assert saved == [False, False, True, False, False, True, False]
        assert ck.saves == 2
        assert ck.load() == {"i": 5}

    def test_save_load_round_trip(self, tmp_path):
        ck = SimulationCheckpointer(tmp_path / "c.ckpt")
        assert not ck.exists()
        ck.save({"state": [1, 2, 3]})
        assert ck.exists()
        assert ck.load() == {"state": [1, 2, 3]}

    def test_clear_removes_file(self, tmp_path):
        ck = SimulationCheckpointer(tmp_path / "c.ckpt")
        ck.save("x")
        ck.clear()
        assert not ck.exists()
        assert ck.load() is None

    def test_corrupt_file_loads_as_none_and_self_clears(self, tmp_path):
        path = tmp_path / "c.ckpt"
        ck = SimulationCheckpointer(path)
        ck.save("x")
        path.write_bytes(path.read_bytes()[:10])  # truncate
        assert ck.load() is None
        assert not path.exists()

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(pickle.dumps(("other-tool", CHECKPOINT_VERSION, "x")))
        ck = SimulationCheckpointer(path)
        assert ck.load() is None
        assert not path.exists()

    def test_stale_version_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(
            pickle.dumps(("uvmrepro-checkpoint", CHECKPOINT_VERSION + 1, "x"))
        )
        assert SimulationCheckpointer(path).load() is None

    def test_no_tmp_litter_after_save(self, tmp_path):
        ck = SimulationCheckpointer(tmp_path / "c.ckpt")
        ck.save({"big": list(range(1000))})
        assert [p.name for p in tmp_path.iterdir()] == ["c.ckpt"]

    def test_on_save_hook_sees_ordinal(self, tmp_path):
        calls = []
        ck = SimulationCheckpointer(
            tmp_path / "c.ckpt", every_phases=2, on_save=calls.append
        )
        for _ in range(4):
            ck.maybe_save("s")
        assert calls == [1, 2]

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            SimulationCheckpointer(tmp_path / "c.ckpt", every_phases=0)


class TestDriverResume:
    """Interrupt a real simulation mid-run and resume it bit-identically."""

    def _workload(self):
        from repro.workloads.stream_triad import StreamTriadWorkload

        return StreamTriadWorkload(total_bytes=3 << 20)

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        from repro.experiments.runner import (
            ExperimentSetup,
            build_driver,
            execute_job,
            simulate,
        )

        workload = self._workload()
        setup = ExperimentSetup()
        baseline = simulate(workload, setup)

        class _Interrupt(Exception):
            pass

        def crash_after_first_save(_saves: int) -> None:
            raise _Interrupt

        ck = SimulationCheckpointer(
            tmp_path / "run.ckpt", every_phases=2, on_save=crash_after_first_save
        )
        driver = build_driver(workload, setup)
        with pytest.raises(_Interrupt):
            driver.run(ck)
        assert ck.exists()

        ck.on_save = None
        result, cache_hit = execute_job(workload, setup, checkpointer=ck)
        assert ck.resumed and not cache_hit
        assert result.total_time_ns == baseline.total_time_ns
        assert result.counters.as_dict() == baseline.counters.as_dict()
        assert result.timer.as_dict() == baseline.timer.as_dict()
        assert result.gpu_phases == baseline.gpu_phases
        assert not ck.exists()  # cleared after the successful run

    def test_checkpointed_run_identical_to_plain_run(self, tmp_path):
        from repro.experiments.runner import ExperimentSetup, build_driver, simulate

        workload = self._workload()
        setup = ExperimentSetup()
        baseline = simulate(workload, setup)
        ck = SimulationCheckpointer(tmp_path / "run.ckpt", every_phases=1)
        result = build_driver(workload, setup).run(ck)
        assert ck.saves > 0
        assert result.total_time_ns == baseline.total_time_ns
        assert result.counters.as_dict() == baseline.counters.as_dict()
