"""Unit tests for the uvmrepro CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("regular", "random", "sgemm", "cusparse"):
            assert name in out


class TestRun:
    def test_run_prints_breakdown_and_counters(self, capsys):
        rc = main(["run", "regular", "--data-mib", "4", "--gpu-mem-mib", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "driver time breakdown" in out
        assert "faults.read" in out
        assert "total simulated time" in out

    def test_run_with_no_prefetch(self, capsys):
        rc = main(
            ["run", "regular", "--data-mib", "4", "--gpu-mem-mib", "32", "--no-prefetch"]
        )
        assert rc == 0
        assert "pages.prefetch_h2d           0" in capsys.readouterr().out

    def test_run_with_policy(self, capsys):
        rc = main(
            ["run", "random", "--data-mib", "2", "--gpu-mem-mib", "32", "--policy", "once"]
        )
        assert rc == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "linpack"])


class TestExhibit:
    def test_fig6_renders(self, capsys):
        assert main(["exhibit", "fig6"]) == 0
        assert "density-tree cascade" in capsys.readouterr().out

    def test_unknown_exhibit(self, capsys):
        assert main(["exhibit", "fig99"]) == 2
