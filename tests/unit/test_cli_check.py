"""`uvmrepro check` flags: flow selection, --changed, formats, exit codes."""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main


def expect_clean_rejection(capsys, argv, fragment):
    """argparse must exit 2 with a one-line error, not a traceback."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert "Traceback" not in err


def write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


CLEAN = """
    def helper() -> int:
        return 3
    """

DIRTY = """
    import time

    def helper() -> float:
        return time.time()
    """


# -- flag validation ----------------------------------------------------------
def test_unknown_flag_exits_2(capsys):
    expect_clean_rejection(capsys, ["check", "--bogus"], "unrecognized arguments")


def test_bad_analysis_family_exits_2(capsys):
    expect_clean_rejection(
        capsys, ["check", "--analysis", "cosmic"], "invalid choice"
    )


def test_bad_format_exits_2(capsys):
    expect_clean_rejection(capsys, ["check", "--format", "xml"], "invalid choice")


def test_changed_with_paths_exits_2(tmp_path, capsys):
    write(tmp_path, "src/repro/m.py", CLEAN)
    code = main(
        ["check", "--root", str(tmp_path), "--changed", "src/repro/m.py"]
    )
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


# -- rule catalog -------------------------------------------------------------
def test_list_rules_includes_flow_tier(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "units-magic-literal" in out
    assert "flow-determinism-taint" in out
    assert "[concurrency]" in out


# -- linting a tree -----------------------------------------------------------
def test_clean_tree_exits_0(tmp_path, capsys):
    write(tmp_path, "src/repro/m.py", CLEAN)
    assert main(["check", "--root", str(tmp_path)]) == 0
    assert "0 new violation(s)" in capsys.readouterr().out


def test_violation_exits_1(tmp_path, capsys):
    write(tmp_path, "src/repro/core/m.py", DIRTY)
    assert main(["check", "--root", str(tmp_path)]) == 1
    assert "determinism-wallclock" in capsys.readouterr().out


def test_no_flow_skips_flow_analyses(tmp_path):
    write(
        tmp_path,
        "src/repro/serve/service.py",
        """
        class S:
            def __init__(self, journal):
                self.journal = journal

            def finish(self, record):
                record.state = "done"
        """,
    )
    assert main(["check", "--root", str(tmp_path)]) == 1
    assert main(["check", "--root", str(tmp_path), "--no-flow"]) == 0


def test_analysis_narrows_families(tmp_path):
    write(
        tmp_path,
        "src/repro/serve/service.py",
        """
        class S:
            def __init__(self, journal):
                self.journal = journal

            def finish(self, record):
                record.state = "done"
        """,
    )
    assert main(["check", "--root", str(tmp_path), "--analysis", "units"]) == 0
    assert main(["check", "--root", str(tmp_path), "--analysis", "protocol"]) == 1


def test_paths_option_matches_positional(tmp_path, capsys):
    write(tmp_path, "src/repro/core/m.py", DIRTY)
    write(tmp_path, "src/repro/core/ok.py", CLEAN)
    code = main(
        [
            "check",
            "--root",
            str(tmp_path),
            "--paths",
            str(tmp_path / "src/repro/core/ok.py"),
        ]
    )
    assert code == 0
    assert "across 1 file(s)" in capsys.readouterr().out


# -- SARIF --------------------------------------------------------------------
def test_format_sarif_prints_a_log(tmp_path, capsys):
    write(tmp_path, "src/repro/core/m.py", DIRTY)
    code = main(["check", "--root", str(tmp_path), "--format", "sarif"])
    assert code == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    results = log["runs"][0]["results"]
    assert any(r["ruleId"] == "determinism-wallclock" for r in results)


def test_sarif_out_writes_artifact(tmp_path, capsys):
    write(tmp_path, "src/repro/m.py", CLEAN)
    artifact = tmp_path / "check.sarif"
    code = main(
        ["check", "--root", str(tmp_path), "--sarif-out", str(artifact)]
    )
    assert code == 0
    log = json.loads(artifact.read_text(encoding="utf-8"))
    assert log["runs"][0]["results"] == []
    # text report still goes to stdout.
    assert "0 new violation(s)" in capsys.readouterr().out


# -- --changed ----------------------------------------------------------------
def git(root: Path, *argv: str) -> None:
    subprocess.run(
        ["git", "-C", str(root), "-c", "user.email=t@t", "-c", "user.name=t"]
        + list(argv),
        check=True,
        capture_output=True,
    )


@pytest.fixture()
def git_repo(tmp_path):
    git(tmp_path, "init", "-q")
    write(tmp_path, "src/repro/m.py", CLEAN)
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "seed")
    return tmp_path


def test_changed_with_no_changes_exits_0(git_repo, capsys):
    assert main(["check", "--root", str(git_repo), "--changed"]) == 0
    assert "nothing to lint" in capsys.readouterr().out


def test_changed_lints_modified_tracked_file(git_repo, capsys):
    write(git_repo, "src/repro/core/m.py", DIRTY)
    git(git_repo, "add", "-A")
    git(git_repo, "commit", "-qm", "add core")
    write(
        git_repo,
        "src/repro/core/m.py",
        DIRTY + "    extra = time.time()\n",
    )
    assert main(["check", "--root", str(git_repo), "--changed"]) == 1
    out = capsys.readouterr().out
    assert "determinism-wallclock" in out
    assert "across 1 file(s)" in out


def test_changed_picks_up_untracked_files(git_repo, capsys):
    write(git_repo, "src/repro/core/fresh.py", DIRTY)
    assert main(["check", "--root", str(git_repo), "--changed"]) == 1
    assert "fresh.py" in capsys.readouterr().out


def test_changed_outside_a_git_repo_exits_2(tmp_path, capsys):
    write(tmp_path, "src/repro/m.py", CLEAN)
    code = main(["check", "--root", str(tmp_path), "--changed"])
    assert code == 2
    assert "git failed" in capsys.readouterr().err


# -- strict waiver expiry -----------------------------------------------------
def test_strict_fails_expired_waiver(tmp_path, capsys):
    write(
        tmp_path,
        "src/repro/core/m.py",
        """
        import time

        t = time.time()  # lint: allow(determinism-wallclock, until=2020-01-01)
        """,
    )
    assert main(["check", "--root", str(tmp_path), "--no-flow"]) == 1
    capsys.readouterr()
    code = main(["check", "--root", str(tmp_path), "--no-flow", "--strict"])
    assert code == 1
    out = capsys.readouterr().out
    assert "expired waiver" in out
    assert "renew the until= date" in out


def test_live_waiver_passes_strict(tmp_path):
    write(
        tmp_path,
        "src/repro/core/m.py",
        """
        import time

        t = time.time()  # lint: allow(determinism-wallclock, until=2999-01-01)
        """,
    )
    assert main(["check", "--root", str(tmp_path), "--no-flow", "--strict"]) == 0


def test_changed_ignores_files_outside_the_lint_universe(git_repo, capsys):
    # tests (and fixture trees) are never linted by the full pass; the
    # changed-files subset must match that universe, not widen it.
    write(git_repo, "tests/test_something.py", DIRTY)
    write(git_repo, "tests/fixtures/flow/planted.py", DIRTY)
    assert main(["check", "--root", str(git_repo), "--changed"]) == 0
    assert "nothing to lint" in capsys.readouterr().out
