"""Elastic membership through the gateway: join, leave, replicate, adopt.

Builds on the scripted fake shards from ``test_gateway`` - the fakes
also speak the ``/store`` migration surface, so a full
probation -> syncing -> migration -> active join runs in-process.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fleet import (
    FleetGateway,
    FleetMembership,
    GatewayConfig,
    MemberState,
    ShardSpec,
)
from repro.fleet.migrate import MigrationTask
from repro.serve.store import CHECKSUM_FIELD, doc_checksum

from tests.unit.fleet.test_gateway import (
    _FakeShard,
    _fleet,
    _key,
    _seed_with_primary,
    _spec,
)


def _store_entry(key: str) -> dict:
    doc = {"key": key, "total_time_ns": 123}
    doc[CHECKSUM_FIELD] = doc_checksum(doc)
    return {"doc": doc, "trace_b64": None}


def _wait_state(gateway, name, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        member = gateway.membership.get(name)
        if member is not None and member.state is state:
            return member
        time.sleep(0.02)
    raise AssertionError(
        f"{name} never reached {state}: "
        f"{[m.to_dict() for m in gateway.membership.members()]}"
    )


@pytest.fixture
def duo():
    shards = [_FakeShard(f"s{i}") for i in range(2)]
    yield shards
    for shard in shards:
        try:
            shard.kill()
        except Exception:
            pass


@pytest.fixture
def newcomer():
    shard = _FakeShard("s9")
    yield shard
    try:
        shard.kill()
    except Exception:
        pass


class TestJoin:
    def test_join_full_lifecycle_to_active(self, duo, newcomer):
        gateway = _fleet(duo, probation_probes=2)
        # seed data on the existing shards so the migration has an arc
        for i in range(40):
            key = f"{i:016x}"
            owner = gateway._ring.primary(key)
            shard = next(s for s in duo if s.name == owner)
            shard.store[key] = _store_entry(key)

        status, body = gateway.join(
            {"shard_name": "s9", "url": newcomer.url, "code_version": None}
        )
        assert status == 202
        assert body["state"] == "probation"
        assert body["probation_probes"] == 2
        assert "s9" not in gateway._ring.nodes  # off-ring until active

        # re-announcing is idempotent: no epoch bump, current state back
        epoch = gateway.membership.epoch
        status, body = gateway.join({"shard_name": "s9", "url": newcomer.url})
        assert (status, body["state"]) == (200, "probation")
        assert gateway.membership.epoch == epoch

        gateway.probe_once()  # healthy probe 1 of 2
        assert gateway.membership.get("s9").state is MemberState.PROBATION
        gateway.probe_once()  # probe 2: promotion to SYNCING + migration
        _wait_state(gateway, "s9", MemberState.ACTIVE)

        assert "s9" in gateway._ring.nodes
        assert gateway.telemetry.counter("fleet.joins") == 1
        assert gateway.telemetry.counter("fleet.members_promoted") == 1
        # exactly the remapped arc landed on the joiner, verified copies
        target = gateway._ring
        expected = {k for s in duo for k in s.store if target.primary(k) == "s9"}
        assert set(newcomer.store) == expected
        audit = gateway.migration_audit()
        assert audit["live"] == []
        assert audit["completed"][-1]["keys_migrated"] == len(expected)
        assert audit["completed"][-1]["skips"] == 0

    def test_partial_arc_skip_keeps_joiner_syncing(self, duo, newcomer):
        """A join whose arc copy skipped even one key must not flip:
        the member stays SYNCING and the prober's respawned migration
        activates it once every arc key can land (the mid-migration
        partition case from the network chaos family)."""
        gateway = _fleet(duo, probation_probes=1)
        target = gateway._ring.with_node("s9")
        arc_keys = []
        for i in range(400):
            key = f"{i:016x}"
            if target.primary(key) == "s9":
                arc_keys.append(key)
            if len(arc_keys) == 4:
                break
        assert len(arc_keys) == 4, "vnodes layout left s9 an empty arc"
        owners = {}
        for key in arc_keys:
            owner = next(
                s for s in duo if s.name == gateway._ring.primary(key)
            )
            owner.store[key] = _store_entry(key)
            owners[key] = owner
        # one arc entry is corrupt in transit: its copy gets skipped
        bad_key = arc_keys[0]
        owners[bad_key].store[bad_key] = {
            "doc": {"key": bad_key, CHECKSUM_FIELD: "torn"},
            "trace_b64": None,
        }

        status, _ = gateway.join({"shard_name": "s9", "url": newcomer.url})
        assert status == 202
        gateway.probe_once()  # probation -> SYNCING + migration
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            audit = gateway.migration_audit()
            if audit["completed"] and not audit["live"]:
                break
            time.sleep(0.02)
        first = gateway.migration_audit()["completed"][-1]
        # the catch-up sweep re-tries (and re-skips) the torn entry
        assert first["skips"] >= 1
        assert {s["key"] for s in first["skipped"]} == {bad_key}
        # the incomplete arc did NOT flip routing
        assert gateway.membership.get("s9").state is MemberState.SYNCING
        assert "s9" not in gateway._ring.nodes
        # the good keys landed; the skipped one did not
        assert set(newcomer.store) == set(arc_keys) - {bad_key}

        # heal the entry, lift the respawn gate, and let the prober retry
        owners[bad_key].store[bad_key] = _store_entry(bad_key)
        gateway._respawn_at.clear()
        gateway.probe_once()
        _wait_state(gateway, "s9", MemberState.ACTIVE)
        assert set(newcomer.store) == set(arc_keys)
        assert gateway.telemetry.counter("fleet.migrations_respawned") >= 1

    def test_join_rejects_version_skew(self, duo, newcomer):
        gateway = _fleet(duo)
        status, body = gateway.join(
            {"shard_name": "s9", "url": newcomer.url, "code_version": "alien"}
        )
        assert status == 403
        assert "allow-version-skew" in body["error"]
        assert gateway.membership.get("s9") is None
        assert gateway.telemetry.counter("fleet.joins_rejected") == 1

    def test_allow_version_skew_admits_anyway(self, duo, newcomer):
        gateway = _fleet(duo, allow_version_skew=True)
        status, _ = gateway.join(
            {"shard_name": "s9", "url": newcomer.url, "code_version": "alien"}
        )
        assert status == 202

    def test_join_rejects_url_conflict(self, duo):
        gateway = _fleet(duo)
        status, body = gateway.join({"shard_name": "imposter", "url": duo[0].url})
        assert status == 409
        assert duo[0].name in body["error"]

    def test_join_rejects_bad_spec(self, duo):
        gateway = _fleet(duo)
        status, _ = gateway.join({"shard_name": "", "url": "ftp://nope"})
        assert status == 400
        assert gateway.telemetry.counter("fleet.joins_rejected") == 1


class TestLeave:
    def test_leave_migrates_arc_then_flips(self):
        shards = [_FakeShard(f"s{i}") for i in range(3)]
        try:
            gateway = _fleet(shards)
            leaver = shards[1]
            for i in range(30):
                key = f"{i:016x}"
                if gateway._ring.primary(key) == leaver.name:
                    leaver.store[key] = _store_entry(key)
            assert leaver.store

            status, body = gateway.leave({"shard_name": leaver.name})
            assert (status, body["state"]) == (202, "leaving")
            _wait_state(gateway, leaver.name, MemberState.LEFT)

            assert leaver.name not in gateway._ring.nodes
            target = gateway._ring
            for key in leaver.store:
                dest = next(s for s in shards if s.name == target.primary(key))
                assert key in dest.store
            assert gateway.telemetry.counter("fleet.leaves") == 1
        finally:
            for shard in shards:
                try:
                    shard.kill()
                except Exception:
                    pass

    def test_leave_unknown_shard_404(self, duo):
        gateway = _fleet(duo)
        status, _ = gateway.leave({"shard_name": "ghost"})
        assert status == 404

    def test_leave_probation_member_is_immediate(self, duo, newcomer):
        gateway = _fleet(duo)
        gateway.join({"shard_name": "s9", "url": newcomer.url})
        status, body = gateway.leave({"shard_name": "s9"})
        assert (status, body["state"]) == (200, "left")
        # and leaving again is idempotent
        status, body = gateway.leave({"shard_name": "s9"})
        assert (status, body["state"]) == (200, "left")

    def test_last_shard_leave_skips_migration(self, newcomer):
        gateway = _fleet([newcomer])
        status, body = gateway.leave({"shard_name": newcomer.name})
        assert (status, body["state"]) == (200, "left")
        assert len(gateway._ring) == 0


class TestReplication:
    def test_follower_redirects_join_to_primary(self, duo):
        config = GatewayConfig(
            shards=(), follow="http://127.0.0.1:1", probe_interval_s=30.0
        )
        follower = FleetGateway(config)
        status, body = follower.join({"shard_name": "x", "url": duo[0].url})
        assert status == 503
        assert body["primary"] == "http://127.0.0.1:1"
        status, body = follower.leave({"shard_name": "x"})
        assert status == 503

    def test_follower_adopts_higher_epoch_view(self, duo):
        primary = _fleet(duo)
        # replicas must share ring geometry for the invariant to hold
        config = GatewayConfig(
            shards=(),
            follow="http://127.0.0.1:1",
            vnodes=primary.config.vnodes,
            probe_interval_s=30.0,
        )
        follower = FleetGateway(config)
        ready, detail = follower.readiness()
        assert not ready
        assert "awaiting first membership view from primary" in detail["reasons"]

        assert follower.membership.apply_view(primary.membership.view())
        with follower._lock:
            follower._sync_handles_locked()
        assert set(follower._ring.nodes) == set(primary._ring.nodes)
        # both route every key identically: the no-disagreement invariant
        for seed in range(30):
            key = _key(seed)
            assert follower._ring.primary(key) == primary._ring.primary(key)

    def test_wait_view_long_polls_until_epoch_bump(self, duo, newcomer):
        gateway = _fleet(duo)
        since = gateway.membership.epoch
        result = {}

        def poll():
            result["view"] = gateway.wait_view(since=since, wait_s=5.0)

        thread = threading.Thread(target=poll)
        thread.start()
        time.sleep(0.1)
        gateway.join({"shard_name": "s9", "url": newcomer.url})
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["view"]["epoch"] > since
        assert any(m["name"] == "s9" for m in result["view"]["members"])

    def test_wait_view_times_out_with_current_view(self, duo):
        gateway = _fleet(duo)
        view = gateway.wait_view(since=gateway.membership.epoch, wait_s=0.05)
        assert view["epoch"] == gateway.membership.epoch


class TestReadiness:
    def test_resuming_journal_is_not_ready(self, duo, tmp_path):
        path = tmp_path / "membership.journal"
        seeds = [ShardSpec(s.name, s.url) for s in duo]
        fm = FleetMembership(path, seeds=seeds)
        fm.append_entry(
            {"op": "migration_start", "mid": "join:sX:e9", "kind": "join", "node": "sX"}
        )
        fm.close()

        config = GatewayConfig(
            shards=(), membership_journal=path, probe_interval_s=30.0
        )
        gateway = FleetGateway(config)
        ready, detail = gateway.readiness()
        assert not ready
        assert "replaying membership journal" in detail["reasons"]
        gateway.membership.close()

    def test_unserved_leave_arc_is_not_ready(self, duo):
        gateway = _fleet(duo)
        assert gateway.readiness()[0]
        # a live leave-migration whose leaver has no handle = a hole
        with gateway._lock:
            gateway._live_migrations["leave:gone:e9"] = MigrationTask(
                mid="leave:gone:e9", kind="leave", node="gone"
            )
        ready, detail = gateway.readiness()
        assert not ready
        assert any("leave:gone:e9" in r for r in detail["reasons"])

    def test_join_migration_does_not_block_readiness(self, duo):
        gateway = _fleet(duo)
        with gateway._lock:
            gateway._live_migrations["join:s9:e9"] = MigrationTask(
                mid="join:s9:e9", kind="join", node="s9"
            )
        assert gateway.readiness()[0]


class TestAdoption:
    def test_sibling_gateway_adopts_by_digest(self, duo):
        first = _fleet(duo)
        record = first.submit_dict(_spec(3))
        assert first.status(record["job_id"])["state"] == "done"

        second = _fleet(duo)
        status = second.status(record["job_id"])
        assert status["state"] == "done"
        assert second.telemetry.counter("fleet.jobs_adopted") == 1
        # and the result is fetchable through the adopting gateway
        doc = second.result_doc(record["job_id"])
        assert doc is not None
        assert doc == first.result_doc(record["job_id"])

    def test_unparseable_ids_stay_unknown(self, duo):
        gateway = _fleet(duo)
        for bogus in ("gw-99999999", "gw-nothex0123456789-000001", "x-y-z"):
            with pytest.raises(KeyError):
                gateway.status(bogus)
        assert gateway.telemetry.counter("fleet.jobs_adopted") == 0


class TestElection:
    def test_stop_wakes_wait_view_long_pollers(self, duo):
        """A stopping gateway must release its long-pollers immediately,
        not strand them for the full wait_s budget."""
        gateway = _fleet(duo)
        started = threading.Event()
        result = {}

        def poll():
            started.set()
            result["view"] = gateway.wait_view(
                since=gateway.membership.epoch, wait_s=30.0
            )

        thread = threading.Thread(target=poll)
        thread.start()
        assert started.wait(timeout=2.0)
        time.sleep(0.05)  # let the poller reach the condition wait
        t0 = time.monotonic()
        gateway.stop()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert time.monotonic() - t0 < 2.0
        assert result["view"]["epoch"] == gateway.membership.epoch

    def test_primary_view_carries_lease_and_migrations(self, duo):
        gateway = _fleet(duo)
        view = gateway.wait_view(replica="http://127.0.0.1:99/")
        assert view["role"] == "primary"
        assert view["lease"]["holder"] == "gateway"  # default gateway_name
        assert view["lease"]["epoch"] == view["epoch"]
        assert view["lease"]["epoch_bound"] > view["epoch"]
        assert view["migrations"] == {"in_flight": []}
        # the replica poll renewed the lease and registered the follower
        assert gateway.telemetry.counter("fleet.lease_renewals") == 1
        assert "http://127.0.0.1:99" in gateway._election.replicas

    def test_anonymous_poll_does_not_renew_lease(self, duo):
        gateway = _fleet(duo)
        gateway.wait_view()
        assert gateway.telemetry.counter("fleet.lease_renewals") == 0
        assert gateway._election.replicas == {}

    def test_follower_hint_chases_adopted_lease(self, duo):
        config = GatewayConfig(
            shards=(), follow="http://127.0.0.1:1", probe_interval_s=30.0
        )
        follower = FleetGateway(config)
        # before first contact the hint is the static follow config
        status, body = follower.join({"shard_name": "x", "url": duo[0].url})
        assert (status, body["primary"]) == (503, "http://127.0.0.1:1")
        # after adopting a view whose lease names the *elected* primary,
        # the hint must point there - not at the dead follow target.
        lease = {
            "holder": "gw9",
            "url": "http://127.0.0.1:92/",
            "epoch": 9,
            "ttl_s": 5.0,
            "epoch_bound": 1033,
        }
        follower._election.note_view(
            {"epoch": 9, "members": [], "lease": lease},
            "http://127.0.0.1:1",
            time.monotonic(),
        )
        status, body = follower.join({"shard_name": "x", "url": duo[0].url})
        assert status == 503
        assert body["primary"] == "http://127.0.0.1:92"
        assert body["primary_name"] == "gw9"
        assert body["role"] == "follower"
        # the follower's own published view relays what it learned
        view = follower.wait_view()
        assert view["role"] == "follower"
        assert view["lease"]["holder"] == "gw9"
        assert view["acting_primary"] == "http://127.0.0.1:92"
        follower.membership.close()

    def test_fenced_primary_refuses_membership_mutations(self, duo, newcomer):
        gateway = _fleet(duo)
        now = time.monotonic()
        # a follower polled one full TTL + slack ago and never came back
        gateway._election.note_follower_poll(
            gateway.membership.epoch,
            "http://127.0.0.1:91",
            now - gateway.config.lease_ttl_s - 1.0,
        )
        assert gateway._election.fenced(now)
        status, body = gateway.join({"shard_name": "s9", "url": newcomer.url})
        assert (status, body.get("fenced")) == (503, True)
        status, body = gateway.leave({"shard_name": duo[0].name})
        assert (status, body.get("fenced")) == (503, True)
        assert gateway.telemetry.counter("fleet.fenced_rejects") == 2
        # jobs still route while fenced: only membership is frozen
        record = gateway.submit_dict(_spec(1))
        assert record["state"] in ("queued", "running", "done")
        # the follower re-polling unfences the primary
        gateway.wait_view(replica="http://127.0.0.1:91")
        status, body = gateway.join({"shard_name": "s9", "url": newcomer.url})
        assert status == 202

    def test_election_audit_document(self, duo):
        gateway = _fleet(duo)
        audit = gateway.election_audit()
        assert audit["gateway"] == "gateway"
        assert audit["role"] == "primary"
        assert audit["epoch"] == gateway.membership.epoch
        assert audit["fenced"] is False
        # the seed epoch(s) this primary minted are in the audit trail
        assert audit["minted"]
        assert audit["minted"][0][0] >= 1
        assert audit["transitions"][0]["event"] == "seed"

    def test_promotion_resumes_replicated_migration(self, duo):
        """A follower holding a replicated in-flight cursor respawns the
        migration on promotion and jumps past the advertised bound."""
        primary = _fleet(duo, gateway_name="gw0")
        for i in range(20):
            key = f"{i:016x}"
            owner = primary._ring.primary(key)
            shard = next(s for s in duo if s.name == owner)
            shard.store[key] = _store_entry(key)

        config = GatewayConfig(
            shards=(),
            follow="http://127.0.0.1:1",
            vnodes=primary.config.vnodes,
            probe_interval_s=30.0,
            gateway_name="gw1",
        )
        follower = FleetGateway(config)
        view = primary.wait_view()
        done_key = next(iter(duo[0].store))
        view["migrations"] = {
            "in_flight": [
                {
                    "mid": "leave:s0:e2",
                    "kind": "leave",
                    "node": "s0",
                    "done_keys": [done_key],
                }
            ]
        }
        assert follower.membership.apply_view(view)
        with follower._lock:
            follower._sync_handles_locked()
        follower._election.note_view(view, "http://127.0.0.1:1", time.monotonic())
        follower._replicated_inflight = view["migrations"]["in_flight"]

        bound = view["lease"]["epoch_bound"]
        follower._promote()
        assert follower._election.is_primary()
        assert follower.membership.epoch > bound
        # the resumed leave migration runs to completion: s0 drains and
        # its arc lands on s1 without recopying the done cursor key
        _wait_state(follower, "s0", MemberState.LEFT)
        assert follower.telemetry.counter("fleet.elections_won") == 1
        audit = follower.election_audit()
        assert audit["transitions"][-1]["event"] == "promoted"
        # every key resumed from the cursor onward got copied; the key
        # the journaled cursor already covered was *not* re-copied (the
        # old primary moved it before dying - resume, not restart).
        for key in duo[0].store:
            if key != done_key:
                assert key in duo[1].store
        assert done_key not in duo[1].store
        follower.membership.close()


class TestDoubleRead:
    def test_result_falls_back_to_migration_counterpart(self, duo):
        for shard in duo:
            shard.hold = False
        gateway = _fleet(duo)
        seed = _seed_with_primary(gateway, "s0")
        record = gateway.submit_dict(_spec(seed))
        key = _key(seed)

        # simulate a completed handoff of s0's arc to s1: the gateway
        # remembers the ring pair, and the counterpart holds the job
        ring_before = gateway._ring
        ring_after = ring_before.without_node("s0")
        with gateway._lock:
            gateway._migration_rings.append((ring_before, ring_after))
        done = next(iter(duo[0].jobs.values()))
        duo[1].jobs[done["job_id"]] = dict(done)

        duo[0].kill()  # primary gone before the client fetched the result
        doc = gateway.result_doc(record["job_id"])
        assert doc is not None
        assert doc["key"] == key
        assert gateway.telemetry.counter("fleet.double_reads") == 1
