"""Migrator: arc selection, verification, resume, and skip accounting.

The migrator sees shards only through ``client_for``, so these tests
drive it against in-memory stub clients - no sockets, no services -
and assert on exactly which keys moved where.
"""

from __future__ import annotations

import pytest

from repro.fleet import HashRing
from repro.fleet.migrate import (
    MAX_CATCHUP_SWEEPS,
    MigrationTask,
    Migrator,
    in_flight_from_entries,
)
from repro.serve.client import ServiceClientError
from repro.serve.store import CHECKSUM_FIELD, doc_checksum
from repro.serve.telemetry import Telemetry


def _doc(key: str) -> dict:
    body = {"key": key, "total_time_ns": 123}
    body[CHECKSUM_FIELD] = doc_checksum(body)
    return body


class _StubShard:
    """An in-memory store speaking the client surface the migrator uses."""

    def __init__(self, keys=()):
        self.entries = {k: {"doc": _doc(k), "trace_b64": None} for k in keys}
        self.list_calls = 0
        #: keys appended to the store after the first enumeration
        #: (simulates jobs completing while the main pass runs).
        self.late_keys: list[str] = []

    def request_with_budget(self, method, path, body=None):
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["store", "keys"]:
            self.list_calls += 1
            if self.list_calls > 1 and self.late_keys:
                for key in self.late_keys:
                    self.entries[key] = {"doc": _doc(key), "trace_b64": None}
                self.late_keys = []
            return {"keys": sorted(self.entries)}, {}
        if method == "GET" and parts[:2] == ["store", "entries"]:
            entry = self.entries.get(parts[2])
            if entry is None:
                raise ServiceClientError(404, "no entry")
            return {"key": parts[2], **entry}, {}
        if method == "POST" and parts[:2] == ["store", "entries"]:
            doc = (body or {}).get("doc") or {}
            if doc.get(CHECKSUM_FIELD) != doc_checksum(doc):
                raise ServiceClientError(400, "checksum mismatch")
            imported = parts[2] not in self.entries
            self.entries.setdefault(
                parts[2], {"doc": doc, "trace_b64": (body or {}).get("trace_b64")}
            )
            return {"key": parts[2], "imported": imported}, {}
        raise ServiceClientError(404, f"no route {method} {path}")


def _keys_for(ring: HashRing, node: str, count: int, start: int = 0):
    """``count`` synthetic keys whose primary under ``ring`` is ``node``."""
    found = []
    i = start
    while len(found) < count:
        key = f"{i:016x}"
        if ring.primary(key) == node:
            found.append(key)
        i += 1
    return found


def _migrator(shards, journal=None, telemetry=None):
    return Migrator(
        lambda name: shards.get(name),
        journal_append=None if journal is None else journal.append,
        telemetry=telemetry,
    )


class TestJoin:
    def test_join_moves_exactly_the_remapped_arc(self):
        current = HashRing(["a", "b"], vnodes=32)
        target = current.with_node("c")
        shards = {"a": _StubShard(), "b": _StubShard(), "c": _StubShard()}
        moving, staying = [], []
        for i in range(200):
            key = f"{i:016x}"
            owner = current.primary(key)
            shards[owner].entries[key] = {"doc": _doc(key), "trace_b64": None}
            (moving if target.primary(key) == "c" else staying).append(key)
        assert moving and staying  # the arc is a strict subset

        task = MigrationTask(mid="join:c:e1", kind="join", node="c")
        audit = _migrator(shards).run(task, current, target)

        assert set(shards["c"].entries) == set(moving)
        assert audit["keys_migrated"] == len(moving)
        assert audit["skips"] == 0
        assert audit["error"] is None
        assert 0.0 < audit["remap_share"] < 1.0
        # sources keep their copies: the flip, not the copy, changes routing
        assert all(k in shards[current.primary(k)].entries for k in moving)

    def test_join_catchup_sweep_collects_late_entries(self):
        current = HashRing(["a"], vnodes=32)
        target = current.with_node("b")
        shards = {"a": _StubShard(), "b": _StubShard()}
        first = _keys_for(target, "b", 3)
        late = _keys_for(target, "b", 2, start=10_000)
        for key in first:
            shards["a"].entries[key] = {"doc": _doc(key), "trace_b64": None}
        shards["a"].late_keys = list(late)

        task = MigrationTask(mid="join:b:e1", kind="join", node="b")
        audit = _migrator(shards).run(task, current, target)

        assert set(shards["b"].entries) == set(first) | set(late)
        assert audit["keys_migrated"] == len(first) + len(late)
        assert 2 <= audit["sweeps"] <= MAX_CATCHUP_SWEEPS + 1

    def test_resume_skips_journaled_cursor_keys(self):
        current = HashRing(["a"], vnodes=32)
        target = current.with_node("b")
        keys = _keys_for(target, "b", 4)
        shards = {"a": _StubShard(keys), "b": _StubShard(keys[:2])}

        task = MigrationTask(
            mid="join:b:e1", kind="join", node="b", done_keys=set(keys[:2])
        )
        audit = _migrator(shards).run(task, current, target)

        assert audit["keys_migrated"] == 2  # only the tail was copied
        assert audit["keys_resumed"] == 2
        assert set(shards["b"].entries) == set(keys)

    def test_unreachable_source_is_skipped_not_fatal(self):
        current = HashRing(["a", "b"], vnodes=32)
        target = current.with_node("c")
        shards = {"b": _StubShard(), "c": _StubShard()}  # "a" has no client
        b_keys = [
            k for k in _keys_for(target, "c", 8) if current.primary(k) == "b"
        ]
        for key in b_keys:
            shards["b"].entries[key] = {"doc": _doc(key), "trace_b64": None}
        telemetry = Telemetry()
        task = MigrationTask(mid="join:c:e1", kind="join", node="c")
        audit = _migrator(shards, telemetry=telemetry).run(task, current, target)

        assert audit["error"] is None
        assert {"key": "*", "source": "a", "reason": "unreachable"} in audit[
            "skipped"
        ]
        # the reachable source's share of the arc still lands
        assert set(shards["c"].entries) == set(b_keys)

    def test_corrupted_transit_document_never_planted(self):
        current = HashRing(["a"], vnodes=32)
        target = current.with_node("b")
        good, bad = _keys_for(target, "b", 2)
        shards = {"a": _StubShard([good, bad]), "b": _StubShard()}
        shards["a"].entries[bad]["doc"]["total_time_ns"] = 999  # checksum now wrong

        telemetry = Telemetry()
        task = MigrationTask(mid="join:b:e1", kind="join", node="b")
        audit = _migrator(shards, telemetry=telemetry).run(task, current, target)

        assert good in shards["b"].entries
        assert bad not in shards["b"].entries
        assert audit["keys_migrated"] == 1
        assert {"key": bad, "source": "a", "reason": "copy failed"} in audit[
            "skipped"
        ]
        # each sweep re-attempts (and re-counts) the undeliverable key
        assert telemetry.counter("fleet.migration_key_skips") == audit["skips"]
        assert audit["skips"] >= 1
        assert telemetry.counter("fleet.keys_migrated") == 1


class TestLeave:
    def test_leave_copies_everything_out(self):
        current = HashRing(["a", "b", "c"], vnodes=32)
        target = current.without_node("c")
        keys = [f"{i:016x}" for i in range(60)]
        shards = {
            "a": _StubShard(),
            "b": _StubShard(),
            "c": _StubShard(keys),  # includes non-primary strays
        }
        task = MigrationTask(mid="leave:c:e9", kind="leave", node="c")
        audit = _migrator(shards).run(task, current, target)

        assert audit["keys_migrated"] == len(keys)
        for key in keys:
            assert key in shards[target.primary(key)].entries

    def test_leave_dead_leaver_is_one_skip(self):
        current = HashRing(["a", "b"], vnodes=32)
        target = current.without_node("b")
        shards = {"a": _StubShard()}
        task = MigrationTask(mid="leave:b:e2", kind="leave", node="b")
        audit = _migrator(shards).run(task, current, target)
        assert audit["keys_migrated"] == 0
        assert audit["skipped"] == [
            {"key": "*", "source": "b", "reason": "unreachable"}
        ]


class TestJournalCursor:
    def test_cursor_records_bracket_the_migration(self):
        current = HashRing(["a"], vnodes=32)
        target = current.with_node("b")
        keys = _keys_for(target, "b", 3)
        shards = {"a": _StubShard(keys), "b": _StubShard()}

        entries = []

        class _J:
            append = staticmethod(entries.append)

        task = MigrationTask(mid="join:b:e1", kind="join", node="b")
        _migrator(shards, journal=_J).run(task, current, target)

        ops = [e["op"] for e in entries]
        assert ops[0] == "migration_start"
        assert ops[-1] == "migration_done"
        assert ops.count("migrated") == len(keys)
        assert {e["key"] for e in entries if e["op"] == "migrated"} == set(keys)
        assert all(e["mid"] == "join:b:e1" for e in entries)
        assert entries[-1]["audit"]["keys_migrated"] == len(keys)

    def test_in_flight_pairs_start_with_done(self):
        entries = [
            {"op": "migration_start", "mid": "m1", "kind": "join", "node": "b"},
            {"op": "migrated", "mid": "m1", "key": "k1"},
            {"op": "migrated", "mid": "m1", "key": "k2"},
            {"op": "migration_start", "mid": "m0", "kind": "leave", "node": "a"},
            {"op": "migration_done", "mid": "m0", "audit": {}},
        ]
        pending = in_flight_from_entries(entries)
        assert len(pending) == 1
        assert pending[0]["mid"] == "m1"
        assert pending[0]["kind"] == "join"
        assert pending[0]["node"] == "b"
        assert pending[0]["done_keys"] == {"k1", "k2"}

    def test_in_flight_ignores_malformed_entries(self):
        entries = [
            {"op": "migration_start"},  # no mid
            {"op": "migration_start", "mid": "m2"},  # no node
            {"op": "migrated", "mid": "m3", "key": 7},  # non-string key
        ]
        assert in_flight_from_entries(entries) == []
