"""FleetMembership: the journaled, epoch-versioned member table."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fleet import FleetMembership, Member, MemberState, ShardSpec


def _seeds(n=2):
    return [ShardSpec(f"s{i}", f"http://127.0.0.1:{9000 + i}") for i in range(n)]


class TestLifecycle:
    def test_seeds_become_active_members(self):
        fm = FleetMembership(seeds=_seeds(3))
        assert fm.active_names() == ["s0", "s1", "s2"]
        assert all(m.state is MemberState.ACTIVE for m in fm.members())
        # one epoch bump per seeded member
        assert fm.epoch == 3

    def test_upsert_starts_on_probation_and_bumps_epoch(self):
        fm = FleetMembership(seeds=_seeds(2))
        before = fm.epoch
        member = fm.upsert("s2", "http://127.0.0.1:9002", code_version="v1")
        assert member.state is MemberState.PROBATION
        assert fm.epoch == before + 1
        assert member.epoch == fm.epoch
        assert "s2" not in fm.active_names()
        assert {m.name for m in fm.routable()} == {"s0", "s1", "s2"}

    def test_full_join_lifecycle(self):
        fm = FleetMembership(seeds=_seeds(1))
        fm.upsert("s1", "http://127.0.0.1:9001")
        fm.set_state("s1", MemberState.SYNCING)
        assert fm.active_names() == ["s0"]
        fm.set_state("s1", MemberState.ACTIVE)
        assert fm.active_names() == ["s0", "s1"]
        fm.set_state("s1", MemberState.LEFT)
        assert fm.active_names() == ["s0"]
        assert [m.name for m in fm.routable()] == ["s0"]
        # the record survives for audit
        assert fm.get("s1").state is MemberState.LEFT

    def test_set_state_unknown_member_raises(self):
        fm = FleetMembership(seeds=_seeds(1))
        with pytest.raises(KeyError):
            fm.set_state("ghost", MemberState.ACTIVE)

    def test_epoch_strictly_monotone_across_mutations(self):
        fm = FleetMembership(seeds=_seeds(1))
        seen = [fm.epoch]
        fm.upsert("s1", "http://127.0.0.1:9001")
        seen.append(fm.epoch)
        fm.set_state("s1", MemberState.SYNCING)
        seen.append(fm.epoch)
        fm.set_state("s1", MemberState.LEFT)
        seen.append(fm.epoch)
        assert seen == sorted(set(seen))

    def test_upsert_normalizes_urls_via_registry(self):
        fm = FleetMembership(seeds=())
        member = fm.upsert("s0", "http://Host.Example:80/")
        assert member.url == "http://host.example"

    def test_member_from_dict_rejects_bad_state(self):
        with pytest.raises(ConfigurationError):
            Member.from_dict(
                {"name": "s0", "url": "http://h:1", "state": "zombie"}
            )


class TestJournal:
    def test_restart_replays_the_fleet(self, tmp_path):
        path = tmp_path / "membership.journal"
        fm = FleetMembership(path, seeds=_seeds(2))
        fm.upsert("s2", "http://127.0.0.1:9002", code_version="v1")
        fm.set_state("s2", MemberState.ACTIVE)
        epoch = fm.epoch
        fm.close()

        reborn = FleetMembership(path, seeds=())
        assert reborn.replayed == 4  # one per mutation, not per member
        assert reborn.epoch == epoch
        assert reborn.active_names() == ["s0", "s1", "s2"]
        assert reborn.get("s2").code_version == "v1"
        reborn.close()

    def test_replay_ignores_stale_seeds(self, tmp_path):
        """A journal that already names members wins over config seeds."""
        path = tmp_path / "membership.journal"
        fm = FleetMembership(path, seeds=_seeds(1))
        fm.close()
        reborn = FleetMembership(path, seeds=_seeds(3))
        assert reborn.active_names() == ["s0"]
        reborn.close()

    def test_extra_entries_surface_migration_cursors(self, tmp_path):
        path = tmp_path / "membership.journal"
        fm = FleetMembership(path, seeds=_seeds(2))
        fm.append_entry({"op": "migration_start", "mid": "join:s2:e3", "kind": "join", "node": "s2"})
        fm.append_entry({"op": "migrated", "mid": "join:s2:e3", "key": "k1"})
        fm.close()

        reborn = FleetMembership(path, seeds=())
        ops = [e["op"] for e in reborn.extra_entries]
        assert ops == ["migration_start", "migrated"]
        reborn.close()

    def test_replay_compacts_to_current_table(self, tmp_path):
        path = tmp_path / "membership.journal"
        fm = FleetMembership(path, seeds=_seeds(1))
        for _ in range(5):  # churn: many mutations for one member
            fm.set_state("s0", MemberState.ACTIVE)
        fm.close()
        size_before = path.stat().st_size
        reborn = FleetMembership(path, seeds=())
        reborn.close()
        assert path.stat().st_size < size_before
        # and the compacted journal still replays identically
        again = FleetMembership(path, seeds=())
        assert again.active_names() == ["s0"]
        again.close()

    def test_memory_only_mode_has_no_journal(self):
        fm = FleetMembership(seeds=_seeds(1))
        assert fm.journal is None
        fm.append_entry({"op": "migrated", "mid": "x", "key": "y"})  # no-op
        fm.close()


class TestViewReplication:
    def test_view_roundtrips_through_apply(self):
        primary = FleetMembership(seeds=_seeds(2))
        primary.upsert("s2", "http://127.0.0.1:9002")
        follower = FleetMembership(seeds=())
        assert follower.apply_view(primary.view()) is True
        assert follower.epoch == primary.epoch
        assert {m.name for m in follower.members()} == {"s0", "s1", "s2"}
        assert follower.get("s2").state is MemberState.PROBATION

    def test_stale_and_tied_views_are_ignored(self):
        primary = FleetMembership(seeds=_seeds(2))
        follower = FleetMembership(seeds=())
        view = primary.view()
        assert follower.apply_view(view) is True
        assert follower.apply_view(view) is False  # tie: ignored
        stale = dict(view)
        stale["epoch"] = view["epoch"] - 1
        assert follower.apply_view(stale) is False
        assert follower.epoch == view["epoch"]

    def test_higher_epoch_replaces_whole_table(self):
        follower = FleetMembership(seeds=_seeds(3))
        primary = FleetMembership(seeds=_seeds(1))
        primary.upsert("s9", "http://127.0.0.1:9009")
        primary.upsert("s8", "http://127.0.0.1:9008")
        primary.upsert("s7", "http://127.0.0.1:9007")
        primary.set_state("s9", MemberState.ACTIVE)
        assert primary.epoch > follower.epoch
        assert follower.apply_view(primary.view()) is True
        assert {m.name for m in follower.members()} == {"s0", "s9", "s8", "s7"}

    def test_apply_view_rejects_garbage(self):
        fm = FleetMembership(seeds=())
        with pytest.raises(ConfigurationError):
            fm.apply_view("not a mapping")
        with pytest.raises(ConfigurationError):
            fm.apply_view({"epoch": "not-an-int"})

    def test_applied_view_is_journaled(self, tmp_path):
        path = tmp_path / "membership.journal"
        primary = FleetMembership(seeds=_seeds(2))
        follower = FleetMembership(path, seeds=())
        assert follower.apply_view(primary.view()) is True
        follower.close()
        reborn = FleetMembership(path, seeds=())
        assert reborn.active_names() == ["s0", "s1"]
        reborn.close()
