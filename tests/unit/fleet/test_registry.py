"""Shard registry / fleet config validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet.registry import GatewayConfig, ShardSpec, load_fleet_config


class TestShardSpec:
    def test_url_trailing_slash_stripped(self):
        assert ShardSpec("a", "http://h:1/").url == "http://h:1"

    @pytest.mark.parametrize(
        "name", ["", "has space", "a/b", "a@b", "tab\tname"]
    )
    def test_bad_names_rejected(self, name):
        with pytest.raises(ConfigurationError):
            ShardSpec(name, "http://h:1")

    @pytest.mark.parametrize("url", ["h:1", "ftp://h:1", ""])
    def test_bad_urls_rejected(self, url):
        with pytest.raises(ConfigurationError):
            ShardSpec("a", url)


class TestGatewayConfig:
    def test_needs_a_shard(self):
        with pytest.raises(ConfigurationError):
            GatewayConfig(shards=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate shard names"):
            GatewayConfig(
                shards=(
                    ShardSpec("a", "http://h:1"),
                    ShardSpec("a", "http://h:2"),
                )
            )

    def test_duplicate_urls_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate shard urls"):
            GatewayConfig(
                shards=(
                    ShardSpec("a", "http://h:1"),
                    ShardSpec("b", "http://h:1"),
                )
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("vnodes", 0),
            ("probe_interval_s", 0.0),
            ("down_after_probes", 0),
            ("recover_after_probes", 0),
        ],
    )
    def test_tunables_validated(self, field, value):
        with pytest.raises(ConfigurationError):
            GatewayConfig(
                shards=(ShardSpec("a", "http://h:1"),), **{field: value}
            )

    def test_from_shard_urls_names_in_order(self):
        config = GatewayConfig.from_shard_urls(
            ["http://h:1", "http://h:2", "http://h:3"]
        )
        assert [s.name for s in config.shards] == ["shard0", "shard1", "shard2"]

    def test_roundtrip_through_dict(self):
        config = GatewayConfig.from_shard_urls(
            ["http://h:1", "http://h:2"], vnodes=16, probe_interval_s=0.5
        )
        assert GatewayConfig.from_dict(config.to_dict()) == config

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fleet config"):
            GatewayConfig.from_dict(
                {"shards": [{"name": "a", "url": "http://h:1"}], "bogus": 1}
            )

    def test_unknown_shard_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown shard"):
            GatewayConfig.from_dict(
                {"shards": [{"name": "a", "url": "http://h:1", "weight": 2}]}
            )


class TestLoadFleetConfig:
    def test_inline_json(self):
        config = load_fleet_config(
            '{"shards": [{"name": "a", "url": "http://h:1"}], "vnodes": 8}'
        )
        assert config.vnodes == 8
        assert config.shards[0].name == "a"

    def test_from_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps({"shards": [{"name": "a", "url": "http://h:1"}]})
        )
        assert load_fleet_config(str(path)).shards[0].url == "http://h:1"

    def test_missing_file(self):
        with pytest.raises(ConfigurationError, match="not found"):
            load_fleet_config("/nonexistent/fleet.json")

    def test_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid fleet config"):
            load_fleet_config("{not json")
