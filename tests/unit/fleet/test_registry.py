"""Shard registry / fleet config validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet.registry import (
    GatewayConfig,
    ShardSpec,
    load_fleet_config,
    normalize_base_url,
)


class TestShardSpec:
    def test_url_trailing_slash_stripped(self):
        assert ShardSpec("a", "http://h:1/").url == "http://h:1"

    @pytest.mark.parametrize(
        "name", ["", "has space", "a/b", "a@b", "tab\tname"]
    )
    def test_bad_names_rejected(self, name):
        with pytest.raises(ConfigurationError):
            ShardSpec(name, "http://h:1")

    @pytest.mark.parametrize("url", ["h:1", "ftp://h:1", ""])
    def test_bad_urls_rejected(self, url):
        with pytest.raises(ConfigurationError):
            ShardSpec("a", url)


class TestNormalizeBaseUrl:
    @pytest.mark.parametrize(
        "raw,canonical",
        [
            ("http://h:1", "http://h:1"),
            ("http://h:1/", "http://h:1"),
            ("http://HOST:8080", "http://host:8080"),
            ("http://host:80", "http://host"),  # scheme-default port
            ("http://host:80/", "http://host"),
            ("https://host:443", "https://host"),
            ("https://host:80", "https://host:80"),  # NOT https default
            ("http://host/api/", "http://host/api"),
        ],
    )
    def test_one_canonical_spelling(self, raw, canonical):
        assert normalize_base_url(raw) == canonical

    @pytest.mark.parametrize(
        "bad", ["host:1", "ftp://h:1", "http://", "http://h:notaport"]
    )
    def test_bad_urls_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            normalize_base_url(bad)

    def test_equivalent_spellings_collide_in_duplicate_check(self):
        """``http://Host:80/`` and ``http://host`` are one endpoint -
        the registry must refuse to ring them under two names."""
        with pytest.raises(ConfigurationError, match="duplicate shard urls"):
            GatewayConfig(
                shards=(
                    ShardSpec("a", "http://Host:80/"),
                    ShardSpec("b", "http://host"),
                )
            )


class TestGatewayConfig:
    def test_needs_a_shard(self):
        with pytest.raises(ConfigurationError):
            GatewayConfig(shards=())

    def test_empty_shards_allowed_with_follow(self):
        config = GatewayConfig(shards=(), follow="http://primary:8100/")
        assert config.follow == "http://primary:8100"

    def test_empty_shards_allowed_with_membership_journal(self, tmp_path):
        config = GatewayConfig(
            shards=(), membership_journal=str(tmp_path / "m.journal")
        )
        assert config.membership_journal.endswith("m.journal")

    def test_probation_probes_validated(self):
        with pytest.raises(ConfigurationError, match="probation_probes"):
            GatewayConfig(
                shards=(ShardSpec("a", "http://h:1"),), probation_probes=0
            )

    def test_elastic_fields_roundtrip_through_dict(self):
        config = GatewayConfig.from_shard_urls(
            ["http://h:1"],
            probation_probes=3,
            allow_version_skew=True,
            membership_journal="/tmp/m.journal",
            gateway_name="gw-a",
        )
        assert GatewayConfig.from_dict(config.to_dict()) == config

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate shard names"):
            GatewayConfig(
                shards=(
                    ShardSpec("a", "http://h:1"),
                    ShardSpec("a", "http://h:2"),
                )
            )

    def test_duplicate_urls_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate shard urls"):
            GatewayConfig(
                shards=(
                    ShardSpec("a", "http://h:1"),
                    ShardSpec("b", "http://h:1"),
                )
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("vnodes", 0),
            ("probe_interval_s", 0.0),
            ("down_after_probes", 0),
            ("recover_after_probes", 0),
        ],
    )
    def test_tunables_validated(self, field, value):
        with pytest.raises(ConfigurationError):
            GatewayConfig(
                shards=(ShardSpec("a", "http://h:1"),), **{field: value}
            )

    def test_from_shard_urls_names_in_order(self):
        config = GatewayConfig.from_shard_urls(
            ["http://h:1", "http://h:2", "http://h:3"]
        )
        assert [s.name for s in config.shards] == ["shard0", "shard1", "shard2"]

    def test_roundtrip_through_dict(self):
        config = GatewayConfig.from_shard_urls(
            ["http://h:1", "http://h:2"], vnodes=16, probe_interval_s=0.5
        )
        assert GatewayConfig.from_dict(config.to_dict()) == config

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fleet config"):
            GatewayConfig.from_dict(
                {"shards": [{"name": "a", "url": "http://h:1"}], "bogus": 1}
            )

    def test_unknown_shard_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown shard"):
            GatewayConfig.from_dict(
                {"shards": [{"name": "a", "url": "http://h:1", "weight": 2}]}
            )


class TestLoadFleetConfig:
    def test_inline_json(self):
        config = load_fleet_config(
            '{"shards": [{"name": "a", "url": "http://h:1"}], "vnodes": 8}'
        )
        assert config.vnodes == 8
        assert config.shards[0].name == "a"

    def test_from_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps({"shards": [{"name": "a", "url": "http://h:1"}]})
        )
        assert load_fleet_config(str(path)).shards[0].url == "http://h:1"

    def test_missing_file(self):
        with pytest.raises(ConfigurationError, match="not found"):
            load_fleet_config("/nonexistent/fleet.json")

    def test_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid fleet config"):
            load_fleet_config("{not json")
