"""Hash-ring properties the gateway's routing correctness rests on."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.fleet.ring import RING_SPACE, HashRing, stable_hash

#: src/ directory that `import repro` resolved to, for subprocesses.
_SRC = str(Path(__file__).resolve().parents[3] / "src")


def _run_in_subprocess(script: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env["PYTHONHASHSEED"] = hash_seed
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    ).stdout.strip()


def _keys(n: int) -> list[str]:
    # spec_digest-shaped keys: hex strings, content-derived
    return [f"{stable_hash(f'key-{i}'):016x}" for i in range(n)]


class TestStableHash:
    def test_within_ring_space(self):
        for text in ("", "a", "key-123", "x" * 1000):
            assert 0 <= stable_hash(text) < RING_SPACE

    def test_deterministic_across_processes(self):
        # hash() would be salted per process; stable_hash must not be.
        script = (
            "from repro.fleet.ring import stable_hash;"
            "print(stable_hash('probe-key'))"
        )
        outputs = {
            _run_in_subprocess(script, seed) for seed in ("0", "1", "424242")
        }
        assert outputs == {str(stable_hash("probe-key"))}


class TestMembership:
    def test_add_duplicate_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ConfigurationError):
            ring.add("a")

    def test_remove_missing_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing(["a"]).remove("b")

    def test_empty_ring_has_no_primary(self):
        with pytest.raises(ConfigurationError):
            HashRing().primary("k")

    def test_vnodes_validated(self):
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)


class TestRouting:
    def test_routing_is_deterministic(self):
        ring_a = HashRing(["s0", "s1", "s2"], vnodes=64)
        ring_b = HashRing(["s2", "s0", "s1"], vnodes=64)  # insertion order
        for key in _keys(200):
            assert ring_a.primary(key) == ring_b.primary(key)
            assert ring_a.preference(key) == ring_b.preference(key)

    def test_routing_deterministic_across_processes(self):
        script = (
            "from repro.fleet.ring import HashRing;"
            "ring = HashRing(['s0', 's1', 's2'], vnodes=64);"
            "print(','.join(ring.primary(f'key-{i}') for i in range(64)))"
        )
        outputs = {_run_in_subprocess(script, seed) for seed in ("0", "7")}
        ring = HashRing(["s0", "s1", "s2"], vnodes=64)
        local = ",".join(ring.primary(f"key-{i}") for i in range(64))
        assert outputs == {local}

    def test_preference_starts_at_primary_and_covers_all(self):
        ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=32)
        for key in _keys(50):
            order = ring.preference(key)
            assert order[0] == ring.primary(key)
            assert sorted(order) == ["s0", "s1", "s2", "s3"]

    def test_preference_n_truncates(self):
        ring = HashRing(["s0", "s1", "s2"], vnodes=32)
        assert len(ring.preference("k", n=2)) == 2
        assert len(ring.preference("k", n=99)) == 3

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"], vnodes=8)
        assert all(ring.primary(k) == "only" for k in _keys(20))
        assert ring.shares() == {"only": 1.0}


class TestBalance:
    @pytest.mark.parametrize("n_shards", range(1, 9))
    def test_key_share_bounded_one_to_eight_shards(self, n_shards):
        """With 64 vnodes no shard owns a wildly outsized key share.

        Checked against the *exact* arc-length shares and against an
        empirical routing of 4000 keys; both must stay within loose
        bounds around the ideal 1/N (consistent hashing concentrates
        around the mean as vnodes grow - 64 is enough for ~2x bounds).
        """
        nodes = [f"s{i}" for i in range(n_shards)]
        ring = HashRing(nodes, vnodes=64)
        ideal = 1.0 / n_shards

        shares = ring.shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert max(shares.values()) <= min(2.0 * ideal, 1.0) + 1e-9
        assert min(shares.values()) >= 0.45 * ideal

        counts = dict.fromkeys(nodes, 0)
        keys = _keys(4000)
        for key in keys:
            counts[ring.primary(key)] += 1
        assert max(counts.values()) / len(keys) <= min(2.0 * ideal, 1.0) + 1e-9
        assert min(counts.values()) / len(keys) >= 0.4 * ideal


class TestMinimalRemap:
    def test_join_remaps_about_one_over_n(self):
        keys = _keys(3000)
        ring = HashRing(["s0", "s1", "s2"], vnodes=64)
        before = {k: ring.primary(k) for k in keys}
        ring.add("s3")
        moved = sum(1 for k in keys if ring.primary(k) != before[k])
        # ideal: 1/4 of keys move to the new shard; nothing else moves
        assert 0.10 <= moved / len(keys) <= 0.45
        for k in keys:
            if ring.primary(k) != before[k]:
                assert ring.primary(k) == "s3"

    def test_leave_remaps_only_the_departed_keys(self):
        keys = _keys(3000)
        ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        before = {k: ring.primary(k) for k in keys}
        ring.remove("s3")
        for k in keys:
            if before[k] != "s3":
                assert ring.primary(k) == before[k], "unrelated key remapped"
        orphans = [k for k in keys if before[k] == "s3"]
        assert orphans, "test needs keys on the removed shard"

    def test_leave_then_rejoin_restores_mapping(self):
        keys = _keys(500)
        ring = HashRing(["s0", "s1", "s2"], vnodes=64)
        before = {k: ring.primary(k) for k in keys}
        ring.remove("s1")
        ring.add("s1")
        assert {k: ring.primary(k) for k in keys} == before

    def test_failover_target_is_next_preference(self):
        """Removing a shard moves its keys to their preference()[1]."""
        keys = _keys(1000)
        ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        expectation = {
            k: ring.preference(k)[1] for k in keys if ring.primary(k) == "s2"
        }
        ring.remove("s2")
        for key, successor in expectation.items():
            assert ring.primary(key) == successor
