"""Unit tests for the lease/election state machine.

:class:`ElectionState` takes ``now`` explicitly everywhere, so these
tests drive full promote/fence/demote cycles with plain floats - no
clocks, threads, or HTTP.
"""

import pytest

from repro.fleet import ElectionState, Role, promotion_offset
from repro.fleet.election import OFFSET_SPAN, lease_doc

TTL = 5.0
PROBES = 3


def _follower(name: str = "gw1", **kwargs) -> ElectionState:
    kwargs.setdefault("lease_ttl_s", TTL)
    kwargs.setdefault("election_probes", PROBES)
    kwargs.setdefault("advertise_url", f"http://127.0.0.1:91/{name}")
    return ElectionState(name, Role.FOLLOWER, now=0.0, **kwargs)


def _primary(name: str = "gw0", **kwargs) -> ElectionState:
    kwargs.setdefault("lease_ttl_s", TTL)
    kwargs.setdefault("epoch_reserve", 1024)
    kwargs.setdefault("advertise_url", f"http://127.0.0.1:90/{name}")
    return ElectionState(name, Role.PRIMARY, now=0.0, **kwargs)


def _view(epoch: int, lease=None) -> dict:
    view = {"epoch": epoch, "members": []}
    if lease is not None:
        view["lease"] = lease
    return view


class TestPromotionOffset:
    def test_stable_and_in_range(self):
        for name in ("gw0", "gw1", "a" * 64):
            off = promotion_offset(name)
            assert off == promotion_offset(name)
            assert 0 <= off < OFFSET_SPAN

    def test_distinct_names_distinct_offsets(self):
        # not guaranteed in general (span is finite) but must hold for
        # the well-known names the fleet tests and docs use.
        offsets = {promotion_offset(n) for n in ("gw0", "gw1", "gw2")}
        assert len(offsets) == 3


class TestFollowerLease:
    def test_boot_grace_prevents_instant_promotion(self):
        st = _follower()
        # lease not yet expired: failures alone never trigger election
        for _ in range(PROBES + 2):
            assert st.note_probe_failure(now=1.0) is False

    def test_promotes_on_expiry_plus_probes(self):
        st = _follower()
        assert st.note_probe_failure(now=TTL + 1) is False
        assert st.note_probe_failure(now=TTL + 2) is False
        assert st.note_probe_failure(now=TTL + 3) is True

    def test_successful_fetch_renews_and_resets_probes(self):
        st = _follower()
        st.note_probe_failure(now=TTL + 1)
        st.note_probe_failure(now=TTL + 2)
        st.note_view(_view(3), "http://127.0.0.1:90", now=TTL + 2.5)
        # probes reset and the deadline moved to now + ttl
        assert st.note_probe_failure(now=TTL + 3) is False
        assert st.note_probe_failure(now=2 * TTL + 3) is False
        assert st.note_probe_failure(now=2 * TTL + 3.5) is True

    def test_lease_ttl_overrides_local_default(self):
        st = _follower()
        lease = lease_doc("gw0", "http://127.0.0.1:90", 3, 20.0, 1027)
        st.note_view(_view(3, lease), "http://127.0.0.1:90", now=0.0)
        for now in (TTL + 1, TTL + 2, TTL + 3):
            assert st.note_probe_failure(now=now) is False  # 20s lease holds
        st2 = _follower()
        st2.note_view(_view(3, lease), "http://127.0.0.1:90", now=0.0)
        results = [st2.note_probe_failure(now=now) for now in (21, 22, 23)]
        assert results == [False, False, True]

    def test_chase_when_lease_names_other_primary(self):
        st = _follower()
        lease = lease_doc("gw2", "http://127.0.0.1:92/", 9, TTL, 1033)
        chase = st.note_view(_view(9, lease), "http://127.0.0.1:90", now=1.0)
        assert chase == "http://127.0.0.1:92"
        assert st.acting_url == "http://127.0.0.1:92"

    def test_no_chase_when_lease_is_own_or_source(self):
        st = _follower(name="gw1")
        own = lease_doc("gw1", "http://elsewhere:1", 9, TTL, 1033)
        assert st.note_view(_view(9, own), "http://127.0.0.1:90", now=1.0) is None
        source = lease_doc("gw0", "http://127.0.0.1:90/", 9, TTL, 1033)
        assert st.note_view(_view(9, source), "http://127.0.0.1:90", now=1.0) is None

    def test_bound_tracking_feeds_promotion_epoch(self):
        st = _follower(name="gw1")
        lease = lease_doc("gw0", "http://127.0.0.1:90", 7, TTL, 2048)
        st.note_view(_view(7, lease), "http://127.0.0.1:90", now=1.0)
        expected = 2048 + 1 + promotion_offset("gw1")
        assert st.promotion_epoch(7) == expected
        # a later view with a smaller bound never lowers the floor
        st.note_view(_view(8), "http://127.0.0.1:90", now=2.0)
        assert st.promotion_epoch(8) == expected

    def test_promotion_epoch_floor_is_current_epoch(self):
        st = _follower(name="gw1")
        assert st.promotion_epoch(41) == 41 + 1 + promotion_offset("gw1")


class TestPromoteDemote:
    def test_promote_becomes_solo_primary(self):
        st = _follower(name="gw1")
        epoch = st.promotion_epoch(5)
        st.promote(epoch, now=10.0)
        assert st.role is Role.PRIMARY
        assert st.is_primary()
        assert st.acting_url == st.advertise_url
        # freshly-promoted primary has no followers: no bound, no fence
        assert st.may_mint(epoch + 1, now=10.0 + 10 * TTL)
        assert [t["event"] for t in st.transitions] == ["seed", "promoted"]
        assert st.transitions[-1]["epoch"] == epoch

    def test_demote_steps_down_and_raises_bound(self):
        st = _primary(name="gw0")
        st.demote("gw1", "http://127.0.0.1:91/", 2100, now=30.0)
        assert st.role is Role.FOLLOWER
        assert not st.may_mint(2101, now=30.0)
        assert st.acting_url == "http://127.0.0.1:91"
        assert st.transitions[-1]["event"] == "demoted"
        assert st.transitions[-1]["holder"] == "gw1"
        # a re-promotion must clear the demoting epoch
        assert st.promotion_epoch(5) > 2100

    def test_demote_restarts_lease_grace(self):
        st = _primary(name="gw0", election_probes=PROBES)
        st.demote("gw1", "http://127.0.0.1:91", 2100, now=30.0)
        assert st.note_probe_failure(now=30.0 + TTL - 0.5) is False


class TestPrimaryFencing:
    def test_solo_primary_never_fences(self):
        st = _primary()
        assert st.may_mint(1, now=0.0)
        assert st.may_mint(10_000, now=1e6)
        assert not st.fenced(now=1e6)

    def test_follower_poll_sets_bound(self):
        st = _primary(epoch_reserve=100)
        st.note_follower_poll(7, "http://127.0.0.1:91/", now=1.0)
        assert st.may_mint(8, now=2.0)
        assert st.may_mint(107, now=2.0)
        assert not st.may_mint(108, now=2.0)  # past the promised bound
        assert st.replicas == {"http://127.0.0.1:91": 1.0}

    def test_fences_after_ttl_without_renewal(self):
        st = _primary(epoch_reserve=100)
        st.note_follower_poll(7, "http://127.0.0.1:91", now=1.0)
        assert not st.fenced(now=1.0 + TTL)
        assert st.fenced(now=1.0 + TTL + 0.1)
        assert not st.may_mint(8, now=1.0 + TTL + 0.1)
        # a returning follower poll unfences
        st.note_follower_poll(7, "http://127.0.0.1:91", now=1.0 + TTL + 1)
        assert not st.fenced(now=1.0 + TTL + 1.5)
        assert st.may_mint(8, now=1.0 + TTL + 1.5)

    def test_bound_is_monotone(self):
        st = _primary(epoch_reserve=100)
        st.note_follower_poll(50, None, now=1.0)
        st.note_follower_poll(7, None, now=2.0)  # stale poll: lower epoch
        assert st.may_mint(150, now=2.5)
        assert not st.may_mint(151, now=2.5)

    def test_follower_ignores_poll_notes(self):
        st = _follower()
        st.note_follower_poll(7, "http://127.0.0.1:92", now=1.0)
        assert st.replicas == {}
        assert not st.may_mint(8, now=1.0)  # not primary: never mints


class TestAudit:
    def test_minted_ranges_merge_contiguous(self):
        st = _primary()
        for epoch in (5, 6, 7, 9):
            st.note_minted(epoch)
        assert st.audit()["minted"] == [[5, 7], [9, 9]]

    def test_lease_for_uses_promised_bound_when_present(self):
        st = _primary(name="gw0", epoch_reserve=100)
        lease = st.lease_for(3)
        assert lease == {
            "holder": "gw0",
            "url": st.advertise_url,
            "epoch": 3,
            "ttl_s": TTL,
            "epoch_bound": 103,
        }
        st.note_follower_poll(50, None, now=1.0)
        assert st.lease_for(3)["epoch_bound"] == 150

    def test_audit_document_shape(self):
        st = _follower(name="gw1")
        lease = lease_doc("gw0", "http://127.0.0.1:90", 7, TTL, 2048)
        st.note_view(_view(7, lease), "http://127.0.0.1:90", now=1.0)
        audit = st.audit()
        assert audit["gateway"] == "gw1"
        assert audit["role"] == "follower"
        assert audit["bound_seen"] == 2048
        assert audit["lease"]["holder"] == "gw0"
        assert audit["minted"] == []
        assert audit["transitions"][0]["event"] == "seed"


class TestSplitBrainInvariant:
    def test_fenced_primary_cannot_mint_into_promoted_range(self):
        """The core safety argument, end to end on two state machines."""
        primary = _primary(name="gw0", epoch_reserve=100)
        follower = _follower(name="gw1")
        epoch = 3
        # steady state: follower polls, primary publishes leased views
        primary.note_follower_poll(epoch, follower.advertise_url, now=1.0)
        follower.note_view(
            _view(epoch, primary.lease_for(epoch)), "http://127.0.0.1:90", now=1.0
        )
        # partition: follower misses probes past its lease...
        t = 1.0 + TTL
        promoted = False
        while not promoted:
            t += 1.0
            promoted = follower.note_probe_failure(now=t)
        new_epoch = follower.promotion_epoch(epoch)
        follower.promote(new_epoch, now=t)
        follower.note_minted(new_epoch)
        # ...by which time the old primary has fenced itself
        assert primary.fenced(now=t)
        assert not primary.may_mint(epoch + 1, now=t)
        # and even unfenced it could never reach the promoted epoch
        assert new_epoch > primary.lease_for(epoch)["epoch_bound"]

    def test_same_round_promotions_pick_distinct_epochs(self):
        bound = 2048
        epochs = set()
        for name in ("gw1", "gw2"):
            st = _follower(name=name)
            lease = lease_doc("gw0", "http://127.0.0.1:90", 7, TTL, bound)
            st.note_view(_view(7, lease), "http://127.0.0.1:90", now=1.0)
            epochs.add(st.promotion_epoch(7))
        assert len(epochs) == 2
