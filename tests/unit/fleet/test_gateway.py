"""Gateway behavior against scripted fake shards.

The fakes speak the service wire protocol but answer instantly (no
simulator, no worker pool), so these tests pin down routing, shedding,
quarantine/failover, recovery, version-skew detection, and metrics
aggregation without the integration suite's process machinery.
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer

import pytest

from repro.fleet import (
    FleetGateway,
    FleetUnavailableError,
    GatewayConfig,
    HashRing,
    ShardSpec,
    ShardState,
    serve_gateway_http,
)
from repro.fleet.ring import stable_hash
from repro.serve.client import ServiceClient, ServiceClientError
from repro.serve.jobs import JobSpec
from repro.serve.store import CHECKSUM_FIELD, doc_checksum
from repro.serve.wire import JsonRequestHandler


def _spec(seed: int) -> dict:
    return {"workload": "stream", "data_bytes": 1 << 20, "seed": seed}


def _key(seed: int) -> str:
    return JobSpec.from_dict(_spec(seed)).spec_digest()


class _FakeShardHandler(JsonRequestHandler):
    server: "_FakeShard"

    def do_GET(self):  # noqa: N802
        shard = self.server
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            self.send_json(
                200,
                {
                    "ok": True,
                    "role": "service",
                    "draining": False,
                    "code_version": shard.version,
                },
            )
        elif parts == ["readyz"]:
            if shard.mode == "ok":
                self.send_json(200, {"ready": True, "reasons": []})
            else:
                self.send_retry_after(
                    503,
                    {"ready": False, "reasons": ["draining"]},
                    shard.retry_after,
                )
        elif parts == ["metrics"]:
            with shard.lock:
                payload = {
                    "uptime_s": 1.0,
                    "counters": dict(shard.counters),
                    "gauges": {"queue_depth": len(shard.jobs)},
                    "job_latency": {},
                }
            self.send_json(200, payload)
        elif parts == ["jobs"]:
            with shard.lock:
                jobs = [
                    {
                        "job_id": j["job_id"],
                        "state": j["state"],
                        "workload": j["spec"]["workload"],
                        "digest": j["key"],
                        "attempts": 1,
                        "cache_hit": False,
                    }
                    for j in shard.jobs.values()
                ]
            self.send_json(200, {"jobs": jobs})
        elif parts == ["store", "keys"]:
            with shard.lock:
                keys = sorted(shard.store)
            self.send_json(200, {"keys": keys})
        elif len(parts) == 3 and parts[:2] == ["store", "entries"]:
            with shard.lock:
                entry = shard.store.get(parts[2])
            if entry is None:
                self.send_json_error(404, f"no stored entry for {parts[2]}")
            else:
                self.send_json(200, {"key": parts[2], **entry})
        elif len(parts) == 2 and parts[0] == "jobs":
            with shard.lock:
                job = shard.jobs.get(parts[1])
            if job is None:
                self.send_json_error(404, f"unknown job {parts[1]}")
            else:
                self.send_json(200, dict(job))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            with shard.lock:
                job = shard.jobs.get(parts[1])
            if job is None or job["state"] != "done":
                self.send_json_error(404, "no result")
            else:
                # content-addressed: identical for a key on every shard
                self.send_json(
                    200,
                    {
                        "key": job["key"],
                        "total_time_ns": stable_hash(job["key"]) % 10**9,
                    },
                )
        else:
            self.send_json_error(404, "no route")

    def do_POST(self):  # noqa: N802
        shard = self.server
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 3 and parts[:2] == ["store", "entries"]:
            body = self.read_json_body()
            doc = body.get("doc") or {}
            if doc.get(CHECKSUM_FIELD) != doc_checksum(doc):
                self.send_json_error(400, "checksum verification failed")
                return
            with shard.lock:
                imported = parts[2] not in shard.store
                shard.store.setdefault(
                    parts[2], {"doc": doc, "trace_b64": body.get("trace_b64")}
                )
            self.send_json(200, {"key": parts[2], "imported": imported})
            return
        with shard.lock:
            shard.post_attempts += 1
        if shard.mode == "shed":
            self.send_retry_after(503, {"error": "draining"}, shard.retry_after)
            return
        if shard.mode == "shed429":
            self.send_retry_after(429, {"error": "queue full"}, shard.retry_after)
            return
        body = self.read_json_body()
        spec = JobSpec.from_dict(body)
        with shard.lock:
            shard.seq += 1
            job = {
                "job_id": f"{shard.name}-{shard.seq:04d}",
                "state": "queued" if shard.hold else "done",
                "key": spec.spec_digest(),
                "spec": body,
                "attempts": 0 if shard.hold else 1,
                "cache_hit": False,
                "error": None,
            }
            shard.jobs[job["job_id"]] = job
            shard.counters["jobs.submitted"] = (
                shard.counters.get("jobs.submitted", 0) + 1
            )
        self.send_json(202, dict(job))

    def do_DELETE(self):  # noqa: N802
        shard = self.server
        parts = [p for p in self.path.split("/") if p]
        with shard.lock:
            job = shard.jobs.get(parts[1]) if len(parts) == 2 else None
            if job is None:
                self.send_json_error(404, "unknown job")
                return
            if job["state"] == "done":
                self.send_json_error(409, "already finished")
                return
            job["state"] = "cancelled"
            self.send_json(200, dict(job))


class _FakeShard(ThreadingHTTPServer):
    """A scripted stand-in for one service shard."""

    daemon_threads = True

    def __init__(self, name, port=0, version="v1", hold=False):
        super().__init__(("127.0.0.1", port), _FakeShardHandler)
        self.name = name
        self.version = version
        #: "ok" | "shed" (503) | "shed429"
        self.mode = "ok"
        #: queued jobs stay queued instead of completing instantly
        self.hold = hold
        self.retry_after = 0.05
        self.jobs: dict[str, dict] = {}
        #: key -> {"doc": ..., "trace_b64": ...} (the migration surface)
        self.store: dict[str, dict] = {}
        self.counters: dict[str, int] = {}
        self.seq = 0
        self.post_attempts = 0
        self.lock = threading.Lock()
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server_address[1]}"

    @property
    def port(self):
        return self.server_address[1]

    def kill(self):
        self.shutdown()
        self.server_close()


def _fleet(shards, **overrides):
    kwargs = dict(
        vnodes=32,
        probe_interval_s=30.0,  # probing is driven manually in tests
        down_after_probes=2,
        recover_after_probes=2,
        connect_timeout_s=1.0,
        read_timeout_s=5.0,
        shed_retry_after_s=0.05,
    )
    kwargs.update(overrides)
    config = GatewayConfig(
        shards=tuple(ShardSpec(s.name, s.url) for s in shards), **kwargs
    )
    gateway = FleetGateway(config)
    gateway.probe_once()
    return gateway


@pytest.fixture
def trio():
    shards = [_FakeShard(f"s{i}") for i in range(3)]
    yield shards
    for shard in shards:
        try:
            shard.kill()
        except Exception:
            pass


def _seed_with_primary(gateway, shard_name, start=100):
    """A spec seed whose routing key lands on ``shard_name``."""
    for seed in range(start, start + 500):
        if gateway._ring.primary(_key(seed)) == shard_name:
            return seed
    raise AssertionError(f"no seed routes to {shard_name}")


class TestRouting:
    def test_routes_to_ring_primary(self, trio):
        gateway = _fleet(trio)
        ring = HashRing([s.name for s in trio], vnodes=32)
        for seed in range(20):
            record = gateway.submit_dict(_spec(seed))
            assert record["shard"] == ring.primary(_key(seed))
            assert record["job_id"].startswith("gw-")
        # every shard job physically lives where the record says
        by_shard = {s.name: len(s.jobs) for s in trio}
        assert sum(by_shard.values()) == 20
        assert gateway.telemetry.counter("fleet.jobs_routed") == 20
        assert gateway.telemetry.counter("fleet.reroutes") == 0

    def test_same_key_same_shard(self, trio):
        gateway = _fleet(trio)
        first = gateway.submit_dict(_spec(7))
        second = gateway.submit_dict(_spec(7))
        assert first["shard"] == second["shard"]
        assert first["job_id"] != second["job_id"]

    def test_bad_spec_rejected_without_touching_shards(self, trio):
        gateway = _fleet(trio)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            gateway.submit_dict({"workload": "nope", "data_bytes": 1})
        assert all(s.post_attempts == 0 for s in trio)


class TestShedding:
    def test_shedding_primary_reroutes_to_next_replica(self, trio):
        gateway = _fleet(trio)
        seed = _seed_with_primary(gateway, "s1")
        trio[1].mode = "shed"
        record = gateway.submit_dict(_spec(seed))
        expected = gateway._ring.preference(_key(seed))[1]
        assert record["shard"] == expected
        assert gateway.telemetry.counter("fleet.reroutes") == 1
        assert gateway._shards["s1"].state is ShardState.SHEDDING

    def test_retry_after_gate_skips_shard_without_contact(self, trio):
        gateway = _fleet(trio)
        seed = _seed_with_primary(gateway, "s2")
        trio[2].mode = "shed"
        trio[2].retry_after = 30.0  # long gate
        gateway.submit_dict(_spec(seed))  # pays one POST, arms the gate
        attempts_before = trio[2].post_attempts
        gateway.submit_dict(_spec(seed))  # gated: not even contacted
        assert trio[2].post_attempts == attempts_before

    def test_429_also_paces(self, trio):
        gateway = _fleet(trio)
        seed = _seed_with_primary(gateway, "s0")
        trio[0].mode = "shed429"
        record = gateway.submit_dict(_spec(seed))
        assert record["shard"] != "s0"
        assert gateway._shards["s0"].state is ShardState.SHEDDING

    def test_whole_fleet_shedding_raises_503(self, trio):
        gateway = _fleet(trio)
        for shard in trio:
            shard.mode = "shed"
            shard.retry_after = 0.75
        with pytest.raises(FleetUnavailableError) as excinfo:
            gateway.submit_dict(_spec(1))
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after_s > 0
        # the hint reflects the shards' own pacing, not a made-up number
        assert excinfo.value.retry_after_s <= 0.75 * 1.1 + 0.01

    def test_shedding_shard_recovers_on_ready_probe(self, trio):
        gateway = _fleet(trio)
        trio[0].mode = "shed"
        gateway.probe_once()
        assert gateway._shards["s0"].state is ShardState.SHEDDING
        trio[0].mode = "ok"
        gateway.probe_once()  # SHEDDING -> UP needs just one ready answer
        assert gateway._shards["s0"].state is ShardState.UP


class TestQuarantineAndFailover:
    def test_dead_shard_quarantined_and_jobs_failed_over(self, trio):
        for shard in trio:
            shard.hold = True  # jobs stay queued: failover has work to do
        gateway = _fleet(trio)
        seed = _seed_with_primary(gateway, "s1")
        record = gateway.submit_dict(_spec(seed))
        assert record["shard"] == "s1"
        trio[1].kill()
        for _ in range(gateway.config.down_after_probes):
            gateway.probe_once()
        assert gateway._shards["s1"].state is ShardState.DOWN
        assert gateway.telemetry.counter("fleet.shard_down") == 1
        assert gateway.telemetry.counter("fleet.failovers") == 1
        after = gateway.status(record["job_id"])
        assert after["shard"] == gateway._ring.preference(_key(seed))[1]
        assert after["failovers"] == 1
        assert after["state"] == "queued"

    def test_served_jobs_not_resurrected_by_failover(self, trio):
        gateway = _fleet(trio)
        seed = _seed_with_primary(gateway, "s0")
        record = gateway.submit_dict(_spec(seed))  # completes instantly
        assert gateway.status(record["job_id"])["state"] == "done"
        # fetch the result: the client has everything it asked for, so
        # losing the shard must NOT trigger a recompute elsewhere
        assert gateway.result_doc(record["job_id"]) is not None
        submitted_before = sum(
            s.counters.get("jobs.submitted", 0) for s in trio
        )
        trio[0].kill()
        for _ in range(gateway.config.down_after_probes):
            gateway.probe_once()
        # done-and-cached: no resubmission anywhere
        submitted_after = sum(
            s.counters.get("jobs.submitted", 0) for s in trio[1:]
        ) + trio[0].counters.get("jobs.submitted", 0)
        assert submitted_after == submitted_before
        assert gateway.status(record["job_id"])["state"] == "done"

    def test_down_shard_recovers_after_streak(self, trio):
        gateway = _fleet(trio)
        port = trio[0].port
        trio[0].kill()
        for _ in range(gateway.config.down_after_probes):
            gateway.probe_once()
        assert gateway._shards["s0"].state is ShardState.DOWN
        # resurrect on the same port (same ShardSpec identity)
        trio[0] = _FakeShard("s0", port=port)
        gateway.probe_once()
        assert gateway._shards["s0"].state is ShardState.DOWN  # streak of 1
        gateway.probe_once()
        assert gateway._shards["s0"].state is ShardState.UP
        assert gateway.telemetry.counter("fleet.shard_recovered") == 1

    def test_submit_while_one_shard_down_routes_around_it(self, trio):
        gateway = _fleet(trio)
        seed = _seed_with_primary(gateway, "s2")
        trio[2].kill()
        for _ in range(gateway.config.down_after_probes):
            gateway.probe_once()
        record = gateway.submit_dict(_spec(seed))
        assert record["shard"] == gateway._ring.preference(_key(seed))[1]
        assert gateway.telemetry.counter("fleet.reroutes") >= 1


class TestCancel:
    def test_cancel_held_job(self, trio):
        for shard in trio:
            shard.hold = True
        gateway = _fleet(trio)
        record = gateway.submit_dict(_spec(3))
        assert gateway.cancel(record["job_id"]) is True
        assert gateway.status(record["job_id"])["state"] == "cancelled"

    def test_cancel_finished_job_refused(self, trio):
        gateway = _fleet(trio)
        record = gateway.submit_dict(_spec(3))
        assert gateway.status(record["job_id"])["state"] == "done"
        assert gateway.cancel(record["job_id"]) is False

    def test_cancelled_orphan_not_failed_over(self, trio):
        for shard in trio:
            shard.hold = True
        gateway = _fleet(trio)
        seed = _seed_with_primary(gateway, "s0")
        record = gateway.submit_dict(_spec(seed))
        trio[0].kill()
        # cancel while its shard is dead but not yet quarantined
        assert gateway.cancel(record["job_id"]) is True
        for _ in range(gateway.config.down_after_probes):
            gateway.probe_once()
        assert gateway.status(record["job_id"])["state"] == "cancelled"
        assert gateway.telemetry.counter("fleet.failovers") == 0


class TestVersionSkew:
    def test_mixed_versions_warn_once(self, trio, caplog):
        trio[1].version = "v2-different"
        with caplog.at_level("WARNING", logger="repro.fleet"):
            gateway = _fleet(trio)
            gateway.probe_once()
            gateway.probe_once()
        warnings = [
            r for r in caplog.records if "mixed code versions" in r.message
        ]
        assert len(warnings) == 1
        assert gateway.telemetry.counter("fleet.version_mismatch") == 1

    def test_uniform_versions_quiet(self, trio, caplog):
        with caplog.at_level("WARNING", logger="repro.fleet"):
            gateway = _fleet(trio)  # all fakes report "v1"
            gateway.probe_once()
        assert not [
            r for r in caplog.records if "mixed code versions" in r.message
        ]
        assert gateway.telemetry.counter("fleet.version_mismatch") == 0


class TestMetrics:
    def test_aggregate_equals_sum_of_shards(self, trio):
        gateway = _fleet(trio)
        for seed in range(12):
            gateway.submit_dict(_spec(seed))
        payload = gateway.metrics()
        shard_docs = {
            name: meta["metrics"]
            for name, meta in payload["fleet"]["shards"].items()
        }
        assert all(doc is not None for doc in shard_docs.values())
        names = set()
        for doc in shard_docs.values():
            names.update(doc["counters"])
        for name in names:
            assert payload["counters"][name] == sum(
                doc["counters"].get(name, 0) for doc in shard_docs.values()
            )
        assert payload["counters"]["fleet.jobs_routed"] == 12
        gauges = payload["gauges"]
        assert gauges["fleet_size"] == 3
        assert gauges["shards_up"] == 3
        assert 0 < gauges["ring_min_share"] <= gauges["ring_max_share"] < 1
        assert abs(sum(payload["fleet"]["ring_shares"].values()) - 1.0) < 1e-9

    def test_down_shard_excluded_from_aggregate(self, trio):
        gateway = _fleet(trio)
        for seed in range(6):
            gateway.submit_dict(_spec(seed))
        trio[0].kill()
        for _ in range(gateway.config.down_after_probes):
            gateway.probe_once()
        payload = gateway.metrics()
        assert payload["fleet"]["shards"]["s0"]["metrics"] is None
        assert payload["fleet"]["shards"]["s0"]["state"] == "down"
        live = [
            meta["metrics"]
            for name, meta in payload["fleet"]["shards"].items()
            if name != "s0"
        ]
        assert payload["counters"]["jobs.submitted"] == sum(
            doc["counters"].get("jobs.submitted", 0) for doc in live
        )


class TestHTTPSurface:
    def test_client_verbs_work_against_gateway_url(self, trio):
        gateway = _fleet(trio)
        server = serve_gateway_http(gateway, "127.0.0.1", 0)
        try:
            client = ServiceClient(server.url, retries=0)
            assert client.healthz() is True
            ready = client.readyz()
            assert ready["ready"] is True
            record = client.submit(_spec(5))
            assert record["job_id"].startswith("gw-")
            final = client.wait(record["job_id"], timeout_s=10)
            assert final["state"] == "done"
            doc = client.result(final["job_id"])
            assert doc["total_time_ns"] == stable_hash(_key(5)) % 10**9
            listing = client.list_jobs()
            assert [j["job_id"] for j in listing] == [record["job_id"]]
            metrics = client.metrics()
            assert metrics["counters"]["fleet.jobs_routed"] == 1
            events = client.events()
            assert any(e["state"] == "routed" for e in events["events"])
            with pytest.raises(ServiceClientError) as excinfo:
                client.status("gw-99999999")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit({"workload": "bogus", "data_bytes": 1})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceClientError) as excinfo:
                client.cancel(record["job_id"])
            assert excinfo.value.status == 409
        finally:
            server.shutdown()
            server.server_close()

    def test_healthz_reports_gateway_role_and_versions(self, trio):
        gateway = _fleet(trio)
        server = serve_gateway_http(gateway, "127.0.0.1", 0)
        try:
            client = ServiceClient(server.url, retries=0)
            payload = client._request("GET", "/healthz")
            assert payload["role"] == "gateway"
            assert payload["code_version"] == gateway.code_version
            assert set(payload["shards"]) == {"s0", "s1", "s2"}
            assert payload["shard_versions"] == {
                "s0": "v1", "s1": "v1", "s2": "v1"
            }
        finally:
            server.shutdown()
            server.server_close()

    def test_readyz_503_when_fleet_down(self, trio):
        gateway = _fleet(trio)
        for shard in trio:
            shard.mode = "shed"
            shard.retry_after = 5.0
        gateway.probe_once()
        server = serve_gateway_http(gateway, "127.0.0.1", 0)
        try:
            from repro.serve.client import ServiceOverloadedError

            client = ServiceClient(server.url, retries=0)
            with pytest.raises(ServiceOverloadedError):
                client.readyz()
        finally:
            server.shutdown()
            server.server_close()
