"""Unit tests for page-granular host migration in ResidencyState."""

import numpy as np
import pytest

from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB


@pytest.fixture
def state():
    space = AddressSpace()
    space.malloc_managed(4 * MiB)
    s = ResidencyState(space)
    s.back_vablock(0)
    return s


class TestMigrateToHost:
    def test_moves_only_resident_pages(self, state):
        state.make_resident(np.array([1, 2, 3]))
        moved, dirty = state.migrate_to_host(np.array([2, 3, 4, 5]))
        assert moved == 2
        assert dirty == 0
        assert state.resident[1]
        assert not state.resident[[2, 3]].any()

    def test_reports_dirty_pages(self, state):
        state.make_resident(np.array([1, 2]), writing=np.array([True, False]))
        moved, dirty = state.migrate_to_host(np.array([1, 2]))
        assert (moved, dirty) == (2, 1)
        assert not state.dirty[[1, 2]].any()

    def test_backing_preserved(self, state):
        state.make_resident(np.array([0]))
        state.migrate_to_host(np.array([0]))
        assert state.backed[0]
        assert state.resident_count[0] == 0

    def test_counts_stay_consistent(self, state):
        state.make_resident(np.arange(10))
        state.migrate_to_host(np.arange(4))
        state.check_invariants()
        assert state.resident_count[0] == 6

    def test_empty_and_all_host_cases(self, state):
        assert state.migrate_to_host(np.empty(0, dtype=np.int64)) == (0, 0)
        assert state.migrate_to_host(np.array([9])) == (0, 0)

    def test_round_trip(self, state):
        state.make_resident(np.array([7]))
        state.migrate_to_host(np.array([7]))
        assert state.make_resident(np.array([7])) == 1
        state.check_invariants()
