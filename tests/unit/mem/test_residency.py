"""Unit tests for page residency bookkeeping."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB


@pytest.fixture
def state():
    space = AddressSpace()
    space.malloc_managed(4 * MiB)  # 2 VABlocks, 1024 pages
    return ResidencyState(space)


class TestBacking:
    def test_back_vablock(self, state):
        state.back_vablock(0)
        assert state.backed[0]
        assert not state.backed[1]

    def test_double_back_rejected(self, state):
        state.back_vablock(0)
        with pytest.raises(SimulationError):
            state.back_vablock(0)

    def test_backed_vablocks_listing(self, state):
        state.back_vablock(1)
        assert state.backed_vablocks().tolist() == [1]


class TestMakeResident:
    def test_requires_backing(self, state):
        with pytest.raises(SimulationError):
            state.make_resident(np.array([0]))

    def test_marks_pages_and_counts(self, state):
        state.back_vablock(0)
        new = state.make_resident(np.array([0, 1, 5]))
        assert new == 3
        assert state.resident[[0, 1, 5]].all()
        assert state.resident_count[0] == 3

    def test_re_residency_counts_zero_new(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([3]))
        assert state.make_resident(np.array([3])) == 0
        assert state.resident_count[0] == 1

    def test_scalar_write_flag(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([1, 2]), writing=True)
        assert state.dirty[[1, 2]].all()

    def test_vector_write_flag(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([1, 2]), writing=np.array([True, False]))
        assert state.dirty[1] and not state.dirty[2]

    def test_empty_is_noop(self, state):
        assert state.make_resident(np.empty(0, dtype=np.int64)) == 0

    def test_mark_dirty_requires_residency(self, state):
        with pytest.raises(SimulationError):
            state.mark_dirty(np.array([0]))


class TestEviction:
    def test_evict_returns_resident_and_dirty(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([0, 1, 2]), writing=np.array([True, False, True]))
        n_res, n_dirty = state.evict_vablock(0)
        assert (n_res, n_dirty) == (3, 2)

    def test_evict_clears_state(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([0, 1]), writing=True)
        state.evict_vablock(0)
        assert not state.resident[:512].any()
        assert not state.dirty[:512].any()
        assert not state.backed[0]
        assert state.resident_count[0] == 0
        assert state.evict_count[0] == 1

    def test_evict_unbacked_rejected(self, state):
        with pytest.raises(SimulationError):
            state.evict_vablock(0)

    def test_re_fault_after_evict(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([7]))
        state.evict_vablock(0)
        state.back_vablock(0)
        assert state.make_resident(np.array([7])) == 1


class TestInvariants:
    def test_check_invariants_passes_on_consistent_state(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([1, 2, 3]), writing=True)
        state.check_invariants()

    def test_detects_count_desync(self, state):
        state.back_vablock(0)
        state.make_resident(np.array([1]))
        state.resident_count[0] = 5
        with pytest.raises(SimulationError):
            state.check_invariants()

    def test_detects_dirty_nonresident(self, state):
        state.dirty[9] = True
        with pytest.raises(SimulationError):
            state.check_invariants()

    def test_vablock_leaf_mask_is_view(self, state):
        state.back_vablock(1)
        state.make_resident(np.array([512]))
        mask = state.vablock_leaf_mask(1)
        assert mask[0]
        assert mask.sum() == 1
