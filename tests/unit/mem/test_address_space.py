"""Unit tests for the four-level address hierarchy."""

import numpy as np
import pytest

from repro.errors import AddressError, AllocationError
from repro.mem.address_space import AddressSpace
from repro.units import KiB, MiB


@pytest.fixture
def space():
    return AddressSpace()


class TestMallocManaged:
    def test_single_allocation(self, space):
        rng = space.malloc_managed(4 * MiB, name="A")
        assert rng.npages == 1024
        assert rng.npages_aligned == 1024
        assert rng.start_page == 0

    def test_unaligned_allocation_pads_to_vablock(self, space):
        rng = space.malloc_managed(5 * KiB)
        assert rng.npages == 2
        assert rng.npages_aligned == 512

    def test_successive_ranges_are_vablock_aligned(self, space):
        space.malloc_managed(3 * KiB, name="A")
        b = space.malloc_managed(1 * MiB, name="B")
        assert b.start_page == 512
        assert b.start_page % space.pages_per_vablock == 0

    def test_zero_size_rejected(self, space):
        with pytest.raises(AllocationError):
            space.malloc_managed(0)

    def test_default_names(self, space):
        a = space.malloc_managed(4096)
        b = space.malloc_managed(4096)
        assert a.name == "range0"
        assert b.name == "range1"

    def test_total_accounting(self, space):
        space.malloc_managed(2 * MiB)
        space.malloc_managed(1 * MiB)
        assert space.total_vablocks == 2
        assert space.total_pages == 1024
        assert space.total_bytes_requested == 3 * MiB


class TestLookups:
    def test_range_of_page(self, space):
        a = space.malloc_managed(2 * MiB, name="A")
        b = space.malloc_managed(2 * MiB, name="B")
        assert space.range_of_page(0) is a
        assert space.range_of_page(512) is b

    def test_range_of_page_out_of_bounds(self, space):
        space.malloc_managed(2 * MiB)
        with pytest.raises(AddressError):
            space.range_of_page(512)

    def test_vablock_descriptor(self, space):
        space.malloc_managed(4 * MiB, name="A")
        vb = space.vablock(1)
        assert vb.start_page == 512
        assert vb.npages == 512
        assert vb.range_index == 0

    def test_vablock_out_of_bounds(self, space):
        with pytest.raises(AddressError):
            space.vablock(0)

    def test_range_pages(self, space):
        rng = space.malloc_managed(8 * KiB)
        assert rng.pages().tolist() == [0, 1]

    def test_contains_page(self, space):
        rng = space.malloc_managed(8 * KiB)
        assert rng.contains_page(1)
        assert not rng.contains_page(2)  # padding, not requested

    def test_iter_vablocks(self, space):
        space.malloc_managed(4 * MiB)
        assert [vb.vablock_id for vb in space.iter_vablocks()] == [0, 1]

    def test_validate_pages(self, space):
        space.malloc_managed(2 * MiB)
        space.validate_pages(np.array([0, 511]))
        with pytest.raises(AddressError):
            space.validate_pages(np.array([512]))


class TestFlexibleGranularity:
    def test_custom_vablock_size(self):
        space = AddressSpace(vablock_size=256 * KiB)
        assert space.pages_per_vablock == 64
        rng = space.malloc_managed(1 * MiB)
        assert space.total_vablocks == 4
        assert rng.npages_aligned == 256

    def test_invalid_geometry_rejected(self):
        with pytest.raises(AddressError):
            AddressSpace(vablock_size=3 * MiB)
