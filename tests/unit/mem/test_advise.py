"""Unit tests for memory-advise plumbing in the address space."""

import pytest

from repro.errors import AddressError
from repro.mem.address_space import AddressSpace
from repro.mem.advise import MemAdvise
from repro.units import MiB


@pytest.fixture
def space():
    s = AddressSpace()
    s.malloc_managed(4 * MiB, name="A")
    s.malloc_managed(2 * MiB, name="B")
    return s


class TestMemAdvise:
    def test_default_is_migrate(self, space):
        assert space.advise_of_range(0) is MemAdvise.MIGRATE
        assert space.advise_of_vablock(0) is MemAdvise.MIGRATE

    def test_advise_by_name(self, space):
        space.mem_advise("B", MemAdvise.READ_MOSTLY)
        assert space.advise_of_range(1) is MemAdvise.READ_MOSTLY
        assert space.advise_of_vablock(2) is MemAdvise.READ_MOSTLY
        # A unaffected
        assert space.advise_of_vablock(0) is MemAdvise.MIGRATE

    def test_advise_by_range_object(self, space):
        space.mem_advise(space.ranges[0], MemAdvise.PINNED_HOST)
        assert space.advise_of_vablock(1) is MemAdvise.PINNED_HOST

    def test_unknown_name_rejected(self, space):
        with pytest.raises(AddressError):
            space.mem_advise("nope", MemAdvise.READ_MOSTLY)

    def test_non_enum_rejected(self, space):
        with pytest.raises(AddressError):
            space.mem_advise("A", "read_mostly")

    def test_vablock_bounds(self, space):
        with pytest.raises(AddressError):
            space.advise_of_vablock(99)
