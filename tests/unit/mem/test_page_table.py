"""Unit tests for page-table bookkeeping."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem.address_space import AddressSpace
from repro.mem.page_table import PageTable
from repro.units import MiB


@pytest.fixture
def space():
    s = AddressSpace()
    s.malloc_managed(2 * MiB)
    return s


@pytest.fixture
def table(space):
    return PageTable(space, side="gpu")


class TestMapping:
    def test_map_counts_new(self, table):
        assert table.map_pages(np.array([0, 1, 2])) == 3
        assert table.mapped_count() == 3

    def test_remap_counts_pte_writes_but_not_new(self, table):
        table.map_pages(np.array([0]))
        assert table.map_pages(np.array([0, 1])) == 1
        assert table.stats.pages_mapped == 3  # PTE writes

    def test_unmap(self, table):
        table.map_pages(np.array([0, 1]))
        assert table.unmap_pages(np.array([0])) == 1
        assert table.mapped_count() == 1

    def test_unmap_unmapped_rejected(self, table):
        with pytest.raises(SimulationError):
            table.unmap_pages(np.array([0]))

    def test_out_of_space_rejected(self, table):
        with pytest.raises(Exception):
            table.map_pages(np.array([10_000]))

    def test_empty_ops_are_noops(self, table):
        assert table.map_pages(np.empty(0, dtype=np.int64)) == 0
        assert table.unmap_pages(np.empty(0, dtype=np.int64)) == 0


class TestBarriers:
    def test_invalidate_bumps_epoch(self, table):
        e1 = table.invalidate_tlb()
        e2 = table.invalidate_tlb()
        assert e2 == e1 + 1
        assert table.stats.tlb_invalidates == 2

    def test_membar_counted(self, table):
        table.membar()
        assert table.stats.membars == 1


class TestConsistency:
    def test_residency_check_passes(self, table, space):
        resident = np.zeros(space.total_pages, dtype=bool)
        resident[[3, 4]] = True
        table.map_pages(np.array([3, 4]))
        table.check_against_residency(resident)

    def test_residency_check_detects_divergence(self, table, space):
        resident = np.zeros(space.total_pages, dtype=bool)
        table.map_pages(np.array([3]))
        with pytest.raises(SimulationError):
            table.check_against_residency(resident)

    def test_host_side_cannot_use_gpu_check(self, space):
        host = PageTable(space, side="host")
        with pytest.raises(SimulationError):
            host.check_against_residency(np.zeros(space.total_pages, dtype=bool))

    def test_unknown_side_rejected(self, space):
        with pytest.raises(SimulationError):
            PageTable(space, side="fpga")
