"""Unit tests for permission/duplication/remote state in ResidencyState."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB


@pytest.fixture
def state():
    space = AddressSpace()
    space.malloc_managed(4 * MiB)
    s = ResidencyState(space)
    s.back_vablock(0)
    s.back_vablock(1)
    return s


class TestPermissions:
    def test_default_migration_maps_writable(self, state):
        state.make_resident(np.array([1]))
        assert state.writable[1]
        assert state.write_ok[1]
        state.check_invariants()

    def test_read_only_mapping(self, state):
        state.make_resident(np.array([1]), writable=False)
        assert state.read_ok[1]
        assert not state.write_ok[1]
        state.check_invariants()

    def test_writing_through_read_only_rejected(self, state):
        with pytest.raises(SimulationError):
            state.make_resident(np.array([1]), writing=True, writable=False)


class TestDuplication:
    def test_duplicate_is_read_only(self, state):
        state.make_resident(np.array([2]), writable=False, duplicated=True)
        assert state.duplicated[2]
        assert state.read_ok[2]
        assert not state.write_ok[2]
        state.check_invariants()

    def test_duplicated_and_writable_rejected(self, state):
        with pytest.raises(SimulationError):
            state.make_resident(np.array([2]), writable=True, duplicated=True)

    def test_collapse_upgrades_and_dirties(self, state):
        state.make_resident(np.array([2, 3]), writable=False, duplicated=True)
        n = state.collapse_duplicates(np.array([2]))
        assert n == 1
        assert state.writable[2] and state.dirty[2] and not state.duplicated[2]
        assert state.duplicated[3]  # untouched
        state.check_invariants()

    def test_collapse_ignores_non_duplicated(self, state):
        state.make_resident(np.array([5]))
        assert state.collapse_duplicates(np.array([5, 9])) == 0

    def test_host_invalidation_drops_clean_copies(self, state):
        state.make_resident(np.array([2, 3]), writable=False, duplicated=True)
        n = state.invalidate_duplicates(np.array([2, 3, 4]))
        assert n == 2
        assert not state.resident[[2, 3]].any()
        assert state.resident_count[0] == 0
        state.check_invariants()

    def test_migrate_to_host_skips_duplicates(self, state):
        state.make_resident(np.array([2]), writable=False, duplicated=True)
        state.make_resident(np.array([3]))
        moved, dirty = state.migrate_to_host(np.array([2, 3]))
        assert moved == 1  # only the exclusive page
        assert state.resident[2] and state.duplicated[2]
        state.check_invariants()

    def test_eviction_clears_duplication_flags(self, state):
        state.make_resident(np.array([2]), writable=False, duplicated=True)
        state.evict_vablock(0)
        assert not state.duplicated[2]
        state.check_invariants()


class TestRemoteMapping:
    def test_remote_map_enables_access_without_residency(self, state):
        assert state.map_remote(np.array([7, 8])) == 2
        assert state.read_ok[[7, 8]].all()
        assert state.write_ok[[7, 8]].all()
        assert not state.resident[[7, 8]].any()
        assert state.total_resident_pages() == 0
        state.check_invariants()

    def test_remote_map_idempotent(self, state):
        state.map_remote(np.array([7]))
        assert state.map_remote(np.array([7])) == 0

    def test_remote_and_resident_exclusive(self, state):
        state.make_resident(np.array([7]))
        with pytest.raises(SimulationError):
            state.map_remote(np.array([7]))

    def test_migrating_remote_pages_rejected(self, state):
        state.map_remote(np.array([7]))
        with pytest.raises(SimulationError):
            state.make_resident(np.array([7]))

    def test_migrate_to_host_ignores_remote(self, state):
        state.map_remote(np.array([7]))
        assert state.migrate_to_host(np.array([7])) == (0, 0)
        assert state.remote_mapped[7]
