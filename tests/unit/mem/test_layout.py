"""Unit tests for address arithmetic."""

import numpy as np
import pytest

from repro.errors import AddressError
from repro.mem import layout


class TestPageMath:
    def test_vablock_of_page(self):
        assert layout.vablock_of_page(0) == 0
        assert layout.vablock_of_page(511) == 0
        assert layout.vablock_of_page(512) == 1

    def test_vablock_of_page_vectorized(self):
        pages = np.array([0, 511, 512, 1024])
        assert layout.vablock_of_page(pages).tolist() == [0, 0, 1, 2]

    def test_big_page_of_page(self):
        assert layout.big_page_of_page(15) == 0
        assert layout.big_page_of_page(16) == 1

    def test_page_span_of_vablock(self):
        assert layout.page_span_of_vablock(0) == (0, 512)
        assert layout.page_span_of_vablock(3) == (1536, 2048)

    def test_negative_vablock_rejected(self):
        with pytest.raises(AddressError):
            layout.page_span_of_vablock(-1)

    def test_pages_of_big_page(self):
        assert layout.pages_of_big_page(2) == (32, 48)

    def test_offset_in_vablock(self):
        assert layout.page_offset_in_vablock(513) == 1

    def test_byte_round_trip(self):
        assert layout.page_of_byte(layout.byte_of_page(77)) == 77
        assert layout.page_of_byte(4095) == 0
        assert layout.page_of_byte(4096) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            layout.page_of_byte(-1)


class TestAlignment:
    def test_align_up(self):
        assert layout.align_up_pages(1, 512) == 512
        assert layout.align_up_pages(512, 512) == 512
        assert layout.align_up_pages(513, 512) == 1024
        assert layout.align_up_pages(0, 512) == 0

    def test_align_up_bad_granule(self):
        with pytest.raises(AddressError):
            layout.align_up_pages(5, 0)


class TestUniqueVablocks:
    def test_empty(self):
        assert layout.unique_vablocks(np.array([])).size == 0

    def test_dedup_and_sort(self):
        pages = np.array([1030, 5, 600, 4])
        assert layout.unique_vablocks(pages).tolist() == [0, 1, 2]


class TestGeometryValidation:
    def test_default_geometry_valid(self):
        layout.check_geometry(4096, 65536, 2 << 20)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(AddressError):
            layout.check_geometry(4096, 65536, 3 << 20)

    def test_non_nesting_rejected(self):
        with pytest.raises(AddressError):
            layout.check_geometry(4096, 4096 * 3, 2 << 20)

    def test_small_flexible_granule_valid(self):
        """Section VI-B flexible granularity: 256 KB VABlocks."""
        layout.check_geometry(4096, 65536, 256 << 10)
