"""ServiceClient endpoint failover: rotation, shared budget, pacing."""

from __future__ import annotations

import threading
import time
from http.server import ThreadingHTTPServer

import pytest

from repro.errors import ReproError
from repro.serve.client import (
    ServiceClient,
    ServiceClientError,
    ServiceOverloadedError,
)
from repro.serve.wire import JsonRequestHandler


class _Handler(JsonRequestHandler):
    server: "_Server"

    def do_GET(self):  # noqa: N802
        self.server.requests += 1
        if self.server.mode == "ok":
            self.send_json(200, {"ready": True, "name": self.server.name})
        else:
            self.send_retry_after(
                503, {"error": "draining"}, self.server.retry_after_s
            )

    do_POST = do_GET


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, name: str, mode: str = "ok", retry_after_s: float = 0.05):
        super().__init__(("127.0.0.1", 0), _Handler)
        self.name = name
        self.mode = mode
        self.retry_after_s = retry_after_s
        self.requests = 0
        threading.Thread(target=self.serve_forever, daemon=True).start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server_address[1]}"

    def close(self):
        self.shutdown()
        self.server_close()


@pytest.fixture
def pair():
    servers = [_Server("a"), _Server("b")]
    yield servers
    for server in servers:
        server.close()


def _dead_url():
    """An endpoint that refuses connections (bound, never accepting)."""
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()  # freed: nothing listens here
    return f"http://127.0.0.1:{port}"


class TestEndpointList:
    def test_single_string_still_works(self, pair):
        client = ServiceClient(pair[0].url)
        assert client.endpoints == (pair[0].url,)
        assert client.base_url == pair[0].url
        doc, _ = client.request_with_budget("GET", "/readyz")
        assert doc["name"] == "a"

    def test_list_of_endpoints_accepted(self, pair):
        client = ServiceClient([s.url for s in pair])
        assert client.endpoints == tuple(s.url for s in pair)
        assert client.base_url == pair[0].url  # first is active

    def test_empty_endpoint_list_rejected(self):
        with pytest.raises(ReproError):
            ServiceClient([])

    def test_trailing_slashes_normalized(self, pair):
        client = ServiceClient([pair[0].url + "/", pair[1].url])
        assert client.endpoints[0] == pair[0].url


class TestConnectFailover:
    def test_dead_primary_fails_over_without_sleeping(self, pair):
        client = ServiceClient(
            [_dead_url(), pair[1].url], retries=0, backoff_budget_s=10.0
        )
        started = time.monotonic()
        doc, _ = client.request_with_budget("GET", "/readyz")
        assert doc["name"] == "b"
        assert time.monotonic() - started < 1.0  # rotation, not backoff
        assert client.base_url == pair[1].url  # sticky after failover

    def test_all_endpoints_dead_raises_connect_error(self):
        client = ServiceClient(
            [_dead_url(), _dead_url()], retries=0, backoff_budget_s=0.0
        )
        with pytest.raises(ServiceClientError) as excinfo:
            client.request_with_budget("GET", "/readyz")
        assert excinfo.value.status == 0

    def test_extra_endpoints_buy_extra_attempts(self):
        """retries=0 with two endpoints still tries both once."""
        live = _Server("late")
        try:
            live.mode = "shed"
            client = ServiceClient(
                [_dead_url(), live.url],
                retries=0,
                retry_backoff_s=0.01,
                backoff_budget_s=0.0,
            )
            with pytest.raises(ServiceOverloadedError):
                client.request_with_budget("GET", "/readyz")
            assert live.requests == 1  # the failover attempt reached it
        finally:
            live.close()


class TestMidResponseDisconnect:
    def test_peer_slamming_connections_fails_over(self, pair):
        """A SIGKILLed gateway closes accepted sockets without answering
        (``RemoteDisconnected``, which urllib does not wrap in URLError);
        the client must rotate to the replica, not crash."""
        import socket
        import threading

        slammer = socket.socket()
        slammer.bind(("127.0.0.1", 0))
        slammer.listen(4)
        port = slammer.getsockname()[1]

        def slam():
            while True:
                try:
                    conn, _ = slammer.accept()
                except OSError:
                    return
                conn.close()  # accepted, then gone: no status line

        thread = threading.Thread(target=slam, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                [f"http://127.0.0.1:{port}", pair[1].url],
                retries=0,
                backoff_budget_s=10.0,
            )
            doc, _ = client.request_with_budget("GET", "/readyz")
            assert doc["name"] == "b"
            assert client.base_url == pair[1].url
        finally:
            slammer.close()


class TestShedFailover:
    def test_shedding_primary_rotates_to_healthy_replica(self, pair):
        pair[0].mode = "shed"
        client = ServiceClient(
            [s.url for s in pair], retries=1, retry_backoff_s=0.01,
            backoff_budget_s=10.0,
        )
        doc, _ = client.request_with_budget("GET", "/readyz")
        assert doc["name"] == "b"
        assert pair[0].requests == 1

    def test_failover_ignores_departed_endpoints_retry_after(self, pair):
        """The 503 endpoint's long Retry-After must not pace the replica."""
        pair[0].mode = "shed"
        pair[0].retry_after_s = 30.0
        client = ServiceClient(
            [s.url for s in pair], retries=1, retry_backoff_s=0.01,
            backoff_budget_s=60.0,
        )
        started = time.monotonic()
        doc, _ = client.request_with_budget("GET", "/readyz")
        assert doc["name"] == "b"
        assert time.monotonic() - started < 2.0  # not the 30 s hint

    def test_budget_shared_across_endpoints_not_multiplied(self, pair):
        """Two shedding endpoints spend ONE budget, not one each."""
        for server in pair:
            server.mode = "shed"
            server.retry_after_s = 30.0
        client = ServiceClient(
            [s.url for s in pair], retries=4, backoff_budget_s=0.3
        )
        started = time.monotonic()
        with pytest.raises(ServiceOverloadedError):
            client.request_with_budget("GET", "/readyz")
        assert time.monotonic() - started < 2.0  # 0.3 s budget, shared
