"""Unit tests for the JobSpec/JobRecord model."""

import json

import pytest

from repro.core.replay import ReplayPolicyKind
from repro.errors import ConfigurationError
from repro.experiments.runner import sweep_cache_key
from repro.serve.jobs import JobRecord, JobSpec, JobState
from repro.units import MiB


def spec(**overrides):
    base = dict(workload="random", data_bytes=4 * MiB)
    base.update(overrides)
    return JobSpec(**base)


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(workload="linpack")

    def test_non_positive_data_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(data_bytes=0)
        with pytest.raises(ConfigurationError):
            spec(data_bytes=-4)

    def test_from_dict_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job spec fields"):
            JobSpec.from_dict({"workload": "random", "data_bytes": 4, "frobnicate": 1})

    def test_from_dict_requires_workload_and_size(self):
        with pytest.raises(ConfigurationError):
            JobSpec.from_dict({"workload": "random"})

    def test_from_dict_overrides_must_be_objects(self):
        with pytest.raises(ConfigurationError):
            JobSpec.from_dict(
                {"workload": "random", "data_bytes": 4 * MiB, "gpu": "big"}
            )

    def test_bad_driver_override_surfaces_at_build(self):
        s = spec(driver={"warp_speed": True})
        with pytest.raises(ConfigurationError):
            s.build_setup()


class TestRoundTrip:
    def test_dict_round_trip(self):
        s = spec(
            seed=7,
            record_trace=True,
            priority=-3,
            driver={"prefetch_enabled": False},
            gpu={"memory_bytes": 32 * MiB},
            vablock_bytes=64 * 1024,
        )
        assert JobSpec.from_dict(s.to_dict()) == s

    def test_json_safe(self):
        s = spec(driver={"replay_policy": "once"})
        assert JobSpec.from_dict(json.loads(json.dumps(s.to_dict()))) == s


class TestCanonicalIdentity:
    def test_priority_excluded_from_content(self):
        assert spec(priority=0).canonical_json() == spec(priority=9).canonical_json()
        assert spec(priority=0).spec_digest() == spec(priority=9).spec_digest()

    def test_content_fields_change_digest(self):
        assert spec(seed=1).spec_digest() != spec(seed=2).spec_digest()
        assert spec().spec_digest() != spec(record_trace=True).spec_digest()

    def test_cache_key_matches_run_sweep(self):
        """The service key is byte-identical to run_sweep's cache key."""
        s = spec(seed=11, gpu={"memory_bytes": 32 * MiB})
        workload, setup = s.build()
        assert s.cache_key() == sweep_cache_key(workload, setup, False)

    def test_cache_key_distinguishes_specs(self):
        assert spec(seed=1).cache_key() != spec(seed=2).cache_key()


class TestBuild:
    def test_build_applies_overrides(self):
        s = spec(
            seed=99,
            driver={"prefetch_enabled": False, "replay_policy": "once"},
            gpu={"memory_bytes": 32 * MiB},
            cost={"fault_read_ns": 111},
            vablock_bytes=128 * 1024,
        )
        workload, setup = s.build()
        assert setup.seed == 99
        assert setup.driver.prefetch_enabled is False
        assert setup.driver.replay_policy is ReplayPolicyKind.ONCE
        assert setup.gpu.memory_bytes == 32 * MiB
        assert setup.cost.fault_read_ns == 111
        assert setup.vablock_bytes == 128 * 1024
        assert workload.required_bytes() > 0

    def test_bad_policy_string(self):
        with pytest.raises(ConfigurationError):
            spec(driver={"replay_policy": "yolo"}).build_setup()


class TestJobState:
    def test_terminal_states(self):
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal

    def test_record_to_dict(self):
        record = JobRecord(job_id="job-1", spec=spec(), key="ab" * 32)
        doc = record.to_dict()
        assert doc["state"] == "queued"
        assert doc["spec"]["workload"] == "random"
        assert doc["attempts"] == 0
