"""Unit: the write-ahead job journal's framing and crash tolerance."""

import os

import pytest

from repro.errors import JournalError
from repro.serve.journal import JobJournal, frame_entry


def entry(i, state="queued"):
    return {"op": "job", "record": {"job_id": f"job-{i:08d}", "state": state}}


class TestRoundTrip:
    def test_append_then_replay_preserves_entries_in_order(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        written = [entry(1), entry(2, "running"), entry(2, "done")]
        for e in written:
            journal.append(e)
        journal.close()

        replay = JobJournal(tmp_path / "journal.jsonl").replay()
        assert replay.entries == written
        assert not replay.torn_tail
        assert replay.dropped_bytes == 0

    def test_append_returns_running_count(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        assert journal.append(entry(1)) == 1
        assert journal.append(entry(2)) == 2
        assert journal.record_count == 2
        journal.close()

    def test_missing_file_replays_empty(self, tmp_path):
        replay = JobJournal(tmp_path / "journal.jsonl").replay()
        assert replay.entries == []
        assert replay.total_bytes == 0

    def test_unwritable_directory_raises_journal_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        with pytest.raises(JournalError):
            JobJournal(blocker / "journal.jsonl")


class TestTornTail:
    """A crash mid-append must cost exactly the torn record, nothing more."""

    @pytest.mark.parametrize("keep", ["header", "payload", "newline"])
    def test_truncated_final_record_is_dropped(self, tmp_path, keep):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        for e in (entry(1), entry(2)):
            journal.append(e)
        journal.close()
        torn = frame_entry(entry(3))
        cut = {"header": 10, "payload": 30, "newline": len(torn) - 1}[keep]
        with open(path, "ab") as fh:
            fh.write(torn[:cut])

        replay = JobJournal(path).replay()
        assert replay.entries == [entry(1), entry(2)]
        assert replay.torn_tail
        assert replay.dropped_bytes == cut

    def test_bit_flip_in_final_payload_fails_the_checksum(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(entry(1))
        journal.append(entry(2))
        journal.close()
        data = bytearray(path.read_bytes())
        data[-5] ^= 0x01  # inside the last record's payload
        path.write_bytes(bytes(data))

        replay = JobJournal(path).replay()
        assert replay.entries == [entry(1)]
        assert replay.torn_tail

    def test_every_byte_truncation_yields_a_whole_record_prefix(self, tmp_path):
        """Replay of any prefix is a prefix of the entries - no partials."""
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        written = [entry(1), entry(2, "running"), entry(3, "done")]
        for e in written:
            journal.append(e)
        journal.close()
        data = path.read_bytes()
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            replay = JobJournal(path).replay()
            assert replay.entries == written[: len(replay.entries)]
            assert replay.valid_bytes <= cut


class TestCompaction:
    def test_compact_replaces_history_with_snapshot(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        for e in (entry(1), entry(1, "running"), entry(1, "done"), entry(2)):
            journal.append(e)
        snapshot = [entry(1, "done"), entry(2)]
        journal.compact(snapshot)
        assert journal.compactions == 1
        assert journal.record_count == 2
        journal.close()
        assert JobJournal(path).replay().entries == snapshot

    def test_append_after_compact_lands_in_the_new_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(entry(1))
        journal.compact([entry(1, "done")])
        journal.append(entry(2))
        journal.close()
        assert JobJournal(path).replay().entries == [entry(1, "done"), entry(2)]

    def test_stale_compaction_tmp_is_swept_on_open(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(entry(1))
        journal.close()
        stale = tmp_path / "journal.jsonl.tmp.99999"
        stale.write_bytes(b"debris from a writer that died mid-compaction")

        replay = JobJournal(path).replay()
        assert not stale.exists()
        assert replay.entries == [entry(1)]


class TestAppendHook:
    def test_on_append_sees_the_running_count(self, tmp_path):
        seen = []
        journal = JobJournal(tmp_path / "journal.jsonl", on_append=seen.append)
        journal.append(entry(1))
        journal.append(entry(2))
        journal.close()
        assert seen == [1, 2]

    def test_hook_fires_after_the_record_is_durable(self, tmp_path):
        """What the hook's crash would leave behind must already replay."""
        path = tmp_path / "journal.jsonl"

        def check(count):
            assert len(JobJournal(path).replay().entries) == count

        journal = JobJournal(path, on_append=check)
        journal.append(entry(1))
        journal.append(entry(2))
        journal.close()


class TestObservability:
    def test_size_bytes_tracks_the_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        assert journal.size_bytes() == 0
        journal.append(entry(1))
        assert journal.size_bytes() == os.path.getsize(path)
        journal.close()
