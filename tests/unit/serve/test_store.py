"""Unit tests for the content-addressed result store."""

from repro.serve.store import ResultStore
from repro.trace.recorder import TraceRecorder

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


def sample_trace():
    rec = TraceRecorder()
    rec.record_fault(10, page=5, vablock=0, stream=1, duplicate=False)
    rec.record_eviction(30, vablock=0, n_pages=3, n_dirty=1)
    return rec.finalize()


class TestDocuments:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        doc = {"total_time_ns": 123, "counters": {"faults.read": 7}}
        store.store(KEY_A, doc)
        assert store.contains(KEY_A)
        assert store.load(KEY_A) == doc

    def test_missing_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.contains(KEY_A)
        assert store.load(KEY_A) is None

    def test_prefix_fanout(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {})
        assert (tmp_path / "aa" / f"{KEY_A}.json").is_file()

    def test_keys_enumerates(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {})
        store.store(KEY_B, {})
        assert sorted(store.keys()) == sorted([KEY_A, KEY_B])
        assert len(store) == 2

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1})
        store.store(KEY_A, {"v": 2})
        assert store.load(KEY_A) == {"v": 2}

    def test_no_tmp_litter(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1}, trace=sample_trace())
        leftovers = [p for p in tmp_path.rglob("*") if "tmp" in p.name]
        assert leftovers == []

    def test_torn_document_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.doc_path(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_text('{"total_time_ns": 12')  # truncated write
        assert store.load(KEY_A) is None


class TestTracePayloads:
    def test_trace_round_trips(self, tmp_path):
        store = ResultStore(tmp_path)
        trace = sample_trace()
        store.store(KEY_A, {"v": 1}, trace=trace, trace_metadata={"job_id": "j"})
        loaded = store.load_result_trace(KEY_A)
        assert loaded is not None
        assert loaded.fault_page.tolist() == trace.fault_page.tolist()
        assert loaded.evict_pages.tolist() == trace.evict_pages.tolist()

    def test_absent_trace_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1})
        assert store.load_result_trace(KEY_A) is None

    def test_discard_removes_both(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1}, trace=sample_trace())
        store.discard(KEY_A)
        assert not store.contains(KEY_A)
        assert store.load_result_trace(KEY_A) is None
