"""Unit tests for the content-addressed result store."""

import json

import pytest

from repro.errors import CorruptResultError
from repro.serve.store import CHECKSUM_FIELD, ResultStore, doc_checksum
from repro.trace.recorder import TraceRecorder

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


def sample_trace():
    rec = TraceRecorder()
    rec.record_fault(10, page=5, vablock=0, stream=1, duplicate=False)
    rec.record_eviction(30, vablock=0, n_pages=3, n_dirty=1)
    return rec.finalize()


class TestDocuments:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        doc = {"total_time_ns": 123, "counters": {"faults.read": 7}}
        store.store(KEY_A, doc)
        assert store.contains(KEY_A)
        assert store.load(KEY_A) == doc

    def test_missing_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.contains(KEY_A)
        assert store.load(KEY_A) is None

    def test_prefix_fanout(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {})
        assert (tmp_path / "aa" / f"{KEY_A}.json").is_file()

    def test_keys_enumerates(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {})
        store.store(KEY_B, {})
        assert sorted(store.keys()) == sorted([KEY_A, KEY_B])
        assert len(store) == 2

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1})
        store.store(KEY_A, {"v": 2})
        assert store.load(KEY_A) == {"v": 2}

    def test_no_tmp_litter(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1}, trace=sample_trace())
        leftovers = [p for p in tmp_path.rglob("*") if "tmp" in p.name]
        assert leftovers == []

    def test_torn_document_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.doc_path(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_text('{"total_time_ns": 12')  # truncated write
        assert store.load(KEY_A) is None


class TestTracePayloads:
    def test_trace_round_trips(self, tmp_path):
        store = ResultStore(tmp_path)
        trace = sample_trace()
        store.store(KEY_A, {"v": 1}, trace=trace, trace_metadata={"job_id": "j"})
        loaded = store.load_result_trace(KEY_A)
        assert loaded is not None
        assert loaded.fault_page.tolist() == trace.fault_page.tolist()
        assert loaded.evict_pages.tolist() == trace.evict_pages.tolist()

    def test_absent_trace_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1})
        assert store.load_result_trace(KEY_A) is None

    def test_discard_removes_both(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1}, trace=sample_trace())
        store.discard(KEY_A)
        assert not store.contains(KEY_A)
        assert store.load_result_trace(KEY_A) is None


class TestChecksums:
    def test_stored_document_carries_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1})
        raw = json.loads(store.doc_path(KEY_A).read_text())
        assert raw[CHECKSUM_FIELD] == doc_checksum({"v": 1})

    def test_checksum_excludes_itself(self):
        doc = {"v": 1}
        assert doc_checksum(doc) == doc_checksum({**doc, CHECKSUM_FIELD: "anything"})

    def test_caller_dict_not_mutated(self, tmp_path):
        store = ResultStore(tmp_path)
        doc = {"v": 1}
        store.store(KEY_A, doc)
        assert doc == {"v": 1}

    def test_get_strips_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1})
        assert store.get(KEY_A) == {"v": 1}

    def test_get_missing_raises_keyerror(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(KeyError):
            store.get(KEY_A)

    def test_legacy_document_without_checksum_loads(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.doc_path(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"v": 1}))
        assert store.get(KEY_A) == {"v": 1}


class TestQuarantine:
    def _corrupt(self, store, key):
        store.store(key, {"v": 1})
        path = store.doc_path(key)
        raw = json.loads(path.read_text())
        raw["v"] = 2  # bit-flip the payload; checksum now stale
        path.write_text(json.dumps(raw))

    def test_checksum_mismatch_raises_and_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        self._corrupt(store, KEY_A)
        with pytest.raises(CorruptResultError):
            store.get(KEY_A)
        assert store.quarantined == 1
        assert not store.doc_path(KEY_A).exists()
        assert (store.quarantine_dir / f"{KEY_A}.json").is_file()
        # afterwards the key is a plain miss, so a writer can repopulate
        with pytest.raises(KeyError):
            store.get(KEY_A)

    def test_lenient_load_self_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        self._corrupt(store, KEY_A)
        assert store.load(KEY_A) is None
        assert not store.contains(KEY_A)
        assert store.quarantined == 1

    def test_torn_document_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.doc_path(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_text('{"total_time_ns": 12')
        with pytest.raises(CorruptResultError):
            store.get(KEY_A)
        assert (store.quarantine_dir / f"{KEY_A}.json").is_file()

    def test_truncated_trace_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1}, trace=sample_trace())
        npz = store.trace_path(KEY_A)
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        with pytest.raises(CorruptResultError):
            store.load_result_trace(KEY_A)
        assert (store.quarantine_dir / f"{KEY_A}.npz").is_file()

    def test_quarantine_dir_not_enumerated(self, tmp_path):
        store = ResultStore(tmp_path)
        self._corrupt(store, KEY_A)
        store.load(KEY_A)
        store.store(KEY_B, {"v": 3})
        assert list(store.keys()) == [KEY_B]


class TestTmpSweep:
    def test_startup_sweeps_stale_tmp(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"v": 1})
        debris = tmp_path / "aa" / "tmpabc123.tmp"
        debris.write_text("partial")
        dot_debris = tmp_path / "aa" / f".{KEY_A}.999.tmp.npz"
        dot_debris.write_bytes(b"\x00")
        reopened = ResultStore(tmp_path)
        assert reopened.tmp_swept == 2
        assert not debris.exists() and not dot_debris.exists()
        assert reopened.load(KEY_A) == {"v": 1}  # real entries untouched

    def test_worker_mode_does_not_sweep(self, tmp_path):
        store = ResultStore(tmp_path)
        debris = tmp_path / "aa"
        debris.mkdir()
        (debris / "tmpabc123.tmp").write_text("in flight")
        worker_store = ResultStore(tmp_path, sweep_tmp=False)
        assert worker_store.tmp_swept == 0
        assert (debris / "tmpabc123.tmp").exists()


class TestMigrationTransfer:
    def test_export_import_round_trip_with_trace(self, tmp_path):
        src = ResultStore(tmp_path / "src")
        dst = ResultStore(tmp_path / "dst")
        src.store(KEY_A, {"total_time_ns": 123}, trace=sample_trace())

        wire = src.export_entry(KEY_A)
        assert wire["key"] == KEY_A
        assert wire["doc"][CHECKSUM_FIELD] == doc_checksum(wire["doc"])
        assert wire["trace_b64"] is not None

        assert dst.import_entry(KEY_A, wire["doc"], wire["trace_b64"]) is True
        assert dst.get(KEY_A) == src.get(KEY_A)
        # the npz payload survived the base64 hop bit-for-bit
        assert dst.trace_path(KEY_A).read_bytes() == src.trace_path(
            KEY_A
        ).read_bytes()

    def test_export_import_without_trace(self, tmp_path):
        src = ResultStore(tmp_path / "src")
        dst = ResultStore(tmp_path / "dst")
        src.store(KEY_A, {"total_time_ns": 7})
        wire = src.export_entry(KEY_A)
        assert wire["trace_b64"] is None
        assert dst.import_entry(KEY_A, wire["doc"]) is True
        assert not dst.trace_path(KEY_A).exists()

    def test_export_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            ResultStore(tmp_path).export_entry(KEY_A)

    def test_export_corrupt_entry_quarantines_never_ships(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(KEY_A, {"total_time_ns": 1})
        path = store.doc_path(KEY_A)
        tampered = json.loads(path.read_text())
        tampered["total_time_ns"] = 999  # checksum now stale
        path.write_text(json.dumps(tampered))
        with pytest.raises(CorruptResultError):
            store.export_entry(KEY_A)
        assert not store.contains(KEY_A)  # quarantined, not served

    def test_import_rejects_corrupted_transfer_before_disk(self, tmp_path):
        src = ResultStore(tmp_path / "src")
        dst = ResultStore(tmp_path / "dst")
        src.store(KEY_A, {"total_time_ns": 1})
        wire = src.export_entry(KEY_A)
        wire["doc"]["total_time_ns"] = 2  # corrupt in transit
        with pytest.raises(ValueError, match="checksum"):
            dst.import_entry(KEY_A, wire["doc"])
        assert not dst.contains(KEY_A)
        assert list(dst.keys()) == []

    def test_import_without_checksum_rejected(self, tmp_path):
        dst = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="no checksum"):
            dst.import_entry(KEY_A, {"total_time_ns": 1})

    def test_reimport_is_idempotent_noop(self, tmp_path):
        src = ResultStore(tmp_path / "src")
        dst = ResultStore(tmp_path / "dst")
        src.store(KEY_A, {"total_time_ns": 1})
        wire = src.export_entry(KEY_A)
        assert dst.import_entry(KEY_A, wire["doc"]) is True
        # a resumed migration cursor replays the copy: no-op, not error
        assert dst.import_entry(KEY_A, wire["doc"]) is False
        assert dst.get(KEY_A) == src.get(KEY_A)
