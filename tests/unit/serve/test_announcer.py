"""Unit tests for the join announcer's rotation and hint chasing.

The announcer must survive primary elections: re-announce passes rotate
to start at whichever gateway last accepted, and a follower's 503 hint
body is chased even when it names a gateway outside the configured
list.  The gateways here are scripted fakes swapped into the
announcer's client cache - no sockets.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.client import ServiceClientError
from repro.serve.service import JoinAnnouncer


class _FakeGateway:
    """Stands in for a ServiceClient against one scripted gateway."""

    def __init__(self, url: str, script):
        self.base_url = url.rstrip("/")
        self.script = script  # callable(method, path, payload) -> dict
        self.requests: list[tuple[str, str, dict | None]] = []

    def _request(self, method, path, payload=None, **kwargs):
        self.requests.append((method, path, payload))
        return self.script(method, path, payload)


def _accept(method, path, payload):
    return {"shard_name": "s9", "state": "probation", "epoch": 2}


def _follower_hint(primary: str):
    def script(method, path, payload):
        if path == "/fleet/join":
            raise ServiceClientError(
                503,
                "not the acting primary",
                detail={"primary": primary, "role": "follower"},
            )
        return {}

    return script


def _unreachable(method, path, payload):
    raise OSError("connection refused")


def _announcer(*fakes: _FakeGateway) -> JoinAnnouncer:
    announcer = JoinAnnouncer(
        [f.base_url for f in fakes],
        shard_name="s9",
        advertise_url="http://127.0.0.1:7000",
    )
    announcer._clients = {f.base_url: f for f in fakes}
    return announcer


class TestAnnounceOnce:
    def test_requires_shard_name(self):
        with pytest.raises(ConfigurationError):
            JoinAnnouncer(["http://gw:1"], shard_name="", advertise_url="u")

    def test_first_acceptor_wins(self):
        gw0 = _FakeGateway("http://gw0:1", _accept)
        gw1 = _FakeGateway("http://gw1:1", _accept)
        announcer = _announcer(gw0, gw1)
        assert announcer.announce_once() is True
        assert announcer.joined_via == "http://gw0:1"
        assert gw0.requests and not gw1.requests

    def test_rotation_starts_at_last_acceptor(self):
        gw0 = _FakeGateway("http://gw0:1", _accept)
        gw1 = _FakeGateway("http://gw1:1", _accept)
        announcer = _announcer(gw0, gw1)
        announcer.joined_via = "http://gw1:1"  # gw1 accepted last time
        assert announcer.announce_once() is True
        assert gw1.requests and not gw0.requests

    def test_follower_hint_is_chased_within_list(self):
        gw0 = _FakeGateway("http://gw0:1", _follower_hint("http://gw1:1"))
        gw1 = _FakeGateway("http://gw1:1", _accept)
        announcer = _announcer(gw0, gw1)
        assert announcer.announce_once() is True
        assert announcer.joined_via == "http://gw1:1"
        # a hint naming a *configured* gateway is not counted as a chase
        assert announcer.hints_chased == 0

    def test_follower_hint_chased_outside_configured_list(self):
        """The post-election case: the hint names the promoted primary,
        which the operator never put in --announce."""
        elected = _FakeGateway("http://elected:1", _accept)
        gw0 = _FakeGateway("http://gw0:1", _follower_hint("http://elected:1/"))
        announcer = _announcer(gw0)
        announcer._clients[elected.base_url] = elected
        assert announcer.announce_once() is True
        assert announcer.joined_via == "http://elected:1"
        assert announcer.hints_chased == 1
        # re-announce goes straight back to the elected primary even
        # though it is absent from the static list
        elected.requests.clear()
        gw0.requests.clear()
        assert announcer.announce_once() is True
        assert elected.requests

    def test_mutual_hints_cannot_loop(self):
        """Two stale followers pointing at each other terminate the pass."""
        gw0 = _FakeGateway("http://gw0:1", _follower_hint("http://gw1:1"))
        gw1 = _FakeGateway("http://gw1:1", _follower_hint("http://gw0:1"))
        announcer = _announcer(gw0, gw1)
        assert announcer.announce_once() is False
        assert len(gw0.requests) == 1
        assert len(gw1.requests) == 1

    def test_unreachable_gateway_falls_through(self):
        gw0 = _FakeGateway("http://gw0:1", _unreachable)
        gw1 = _FakeGateway("http://gw1:1", _accept)
        announcer = _announcer(gw0, gw1)
        assert announcer.announce_once() is True
        assert announcer.joined_via == "http://gw1:1"
        assert announcer.announce_attempts == 2

    def test_all_down_returns_false(self):
        gw0 = _FakeGateway("http://gw0:1", _unreachable)
        announcer = _announcer(gw0)
        assert announcer.announce_once() is False
        assert announcer.joined_via is None


class TestLeave:
    def test_leave_prefers_last_acceptor(self):
        order = []

        def script_for(name):
            def script(method, path, payload):
                if path == "/fleet/leave":
                    order.append(name)
                    return {"shard_name": "s9", "state": "left"}
                if path == "/fleet/view":
                    return {
                        "epoch": 3,
                        "members": [{"name": "s9", "state": "left"}],
                    }
                return {}

            return script

        gw0 = _FakeGateway("http://gw0:1", script_for("gw0"))
        gw1 = _FakeGateway("http://gw1:1", script_for("gw1"))
        announcer = _announcer(gw0, gw1)
        announcer.joined_via = "http://gw1:1"
        announcer.leave(drain_timeout_s=1.0)
        assert order == ["gw1"]  # the acting primary was tried first

    def test_leave_waits_for_migration_to_flip(self):
        states = iter(["leaving", "leaving", "left"])

        def script(method, path, payload):
            if path == "/fleet/leave":
                return {"shard_name": "s9", "state": "leaving"}
            return {
                "epoch": 3,
                "members": [{"name": "s9", "state": next(states)}],
            }

        gw0 = _FakeGateway("http://gw0:1", script)
        announcer = _announcer(gw0)
        announcer.leave(drain_timeout_s=5.0)
        views = [r for r in gw0.requests if r[1] == "/fleet/view"]
        assert len(views) == 3  # polled until the member read "left"
