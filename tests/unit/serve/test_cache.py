"""Unit: the in-memory LRU result tier (boundaries, eviction, threads)."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve.cache import CacheStats, LruCache, estimate_size


class TestBasics:
    def test_get_miss_then_hit(self):
        cache = LruCache(1024)
        assert cache.get("k") is None
        assert cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_put_refreshes_existing_key_without_growth(self):
        cache = LruCache(1024)
        cache.put("k", {"v": 1}, size_bytes=100)
        cache.put("k", {"v": 2}, size_bytes=100)
        assert len(cache) == 1
        assert cache.size_bytes == 100
        assert cache.get("k") == {"v": 2}

    def test_copy_out_protects_cached_document(self):
        cache = LruCache(1024)
        cache.put("k", {"v": 1})
        doc = cache.get("k")
        doc["v"] = 999
        doc["extra"] = True
        assert cache.get("k") == {"v": 1}

    def test_put_copies_in_too(self):
        cache = LruCache(1024)
        original = {"v": 1}
        cache.put("k", original)
        original["v"] = 999
        assert cache.get("k") == {"v": 1}

    def test_contains_does_not_count_a_probe(self):
        cache = LruCache(1024)
        cache.put("k", 1, size_bytes=8)
        assert "k" in cache and "missing" not in cache
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_discard_and_clear(self):
        cache = LruCache(1024)
        cache.put("a", 1, size_bytes=10)
        cache.put("b", 2, size_bytes=10)
        cache.discard("a")
        cache.discard("never-there")  # no-op
        assert "a" not in cache and cache.size_bytes == 10
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0


class TestNegativeEntryProtection:
    def test_none_is_not_cacheable(self):
        cache = LruCache(1024)
        with pytest.raises(ConfigurationError):
            cache.put("k", None)
        assert "k" not in cache


class TestBounds:
    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            LruCache(-1)

    def test_disabled_cache_is_inert(self):
        cache = LruCache(0)
        assert not cache.enabled
        assert not cache.put("k", 1)
        assert cache.get("k") is None
        assert cache.stats() == CacheStats(0, 0, 0, 0, 0, 0, 0)

    def test_oversize_value_rejected_not_destructive(self):
        cache = LruCache(100)
        cache.put("small", 1, size_bytes=50)
        assert not cache.put("huge", 2, size_bytes=101)
        assert "small" in cache  # the live entry survived
        assert cache.stats().rejected == 1

    def test_eviction_is_lru_order(self):
        cache = LruCache(30)
        for key in ("a", "b", "c"):
            cache.put(key, key, size_bytes=10)
        cache.get("a")  # refresh: b becomes least-recently-used
        cache.put("d", "d", size_bytes=10)
        assert "b" not in cache
        assert all(k in cache for k in ("a", "c", "d"))
        assert cache.stats().evictions == 1

    def test_exact_budget_boundary_does_not_evict(self):
        cache = LruCache(30)
        for key in ("a", "b", "c"):
            cache.put(key, key, size_bytes=10)
        assert len(cache) == 3 and cache.stats().evictions == 0

    def test_one_byte_over_evicts_exactly_one(self):
        cache = LruCache(30)
        for key in ("a", "b", "c"):
            cache.put(key, key, size_bytes=10)
        cache.put("d", "d", size_bytes=11)
        assert len(cache) == 2  # 10 + 11 = 21; another 10 would fit but order rules
        assert cache.size_bytes <= 30

    def test_size_accounting_never_goes_negative(self):
        cache = LruCache(25)
        cache.put("a", "a", size_bytes=10)
        cache.put("a", "a", size_bytes=20)  # refresh to larger
        cache.put("b", "b", size_bytes=20)  # evicts a
        assert cache.size_bytes == 20
        assert cache.stats().size_bytes >= 0


class TestEstimateSize:
    def test_json_documents_use_json_length(self):
        doc = {"counters": {"x": 1}, "ns": 12345}
        import json

        expected = len(json.dumps(doc, sort_keys=True, separators=(",", ":")))
        assert estimate_size(doc) == expected

    def test_non_json_values_fall_back_to_pickle(self):
        import numpy as np

        arr = np.zeros(1000, dtype=np.int64)
        assert estimate_size({"a": arr}) >= arr.nbytes


class TestConcurrency:
    def test_hammer_from_many_threads(self):
        cache = LruCache(50_000)
        errors = []

        def worker(tid):
            try:
                for i in range(300):
                    key = f"k{(tid * 7 + i) % 40}"
                    cache.put(key, {"tid": tid, "i": i}, size_bytes=100)
                    value = cache.get(key)
                    if value is not None:
                        assert set(value) == {"tid", "i"}
                    cache.discard(f"k{(i * 13) % 40}")
                    _ = cache.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.size_bytes <= cache.max_bytes
        assert stats.size_bytes == 100 * stats.entries
