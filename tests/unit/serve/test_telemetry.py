"""Unit tests for the service telemetry accumulator."""

from repro.serve import telemetry as tm
from repro.serve.telemetry import Telemetry


class TestCounters:
    def test_counts_accumulate(self):
        t = Telemetry()
        t.count(tm.JOBS_SUBMITTED)
        t.count(tm.JOBS_SUBMITTED, 2)
        assert t.snapshot()["counters"][tm.JOBS_SUBMITTED] == 3

    def test_charge_rounds_and_clamps(self):
        t = Telemetry()
        t.charge("job.run", 1500.7)
        assert t.snapshot()["timers_ns"]["job.run"] == 1501


class TestCacheHitRate:
    def test_zero_when_cold(self):
        assert Telemetry().snapshot()["cache_hit_rate"] == 0.0

    def test_rate_combines_store_and_sweep_hits(self):
        t = Telemetry()
        t.count(tm.SIMULATIONS_RUN, 2)
        t.count(tm.CACHE_HITS_STORE, 1)
        t.count(tm.CACHE_HITS_SWEEP, 1)
        assert t.snapshot()["cache_hit_rate"] == 0.5


class TestLatency:
    def test_percentiles_in_snapshot(self):
        t = Telemetry()
        for v in range(1, 101):
            t.observe_latency(v * 1000.0)  # 1..100 us
        latency = t.snapshot()["job_latency"]
        assert latency["n"] == 100
        assert abs(latency["p50_us"] - 50.5) < 0.01
        assert abs(latency["p95_us"] - 95.05) < 0.1
        assert latency["max_us"] == 100.0

    def test_reservoir_bounded(self):
        t = Telemetry(max_samples=10)
        for v in range(100):
            t.observe_latency(float(v))
        assert t.snapshot()["job_latency"]["n"] == 10


class TestEvents:
    def test_sequence_is_monotonic(self):
        t = Telemetry()
        seqs = [t.event("job-1", "queued"), t.event("job-1", "running")]
        assert seqs == sorted(seqs)
        assert t.last_seq == seqs[-1]

    def test_events_since_cursor(self):
        t = Telemetry()
        t.event("job-1", "queued")
        cursor = t.event("job-1", "running")
        t.event("job-1", "done", attempts=1)
        fresh = t.events_since(cursor)
        assert [e["state"] for e in fresh] == ["done"]
        assert fresh[0]["attempts"] == 1

    def test_ring_buffer_drops_oldest(self):
        t = Telemetry(max_events=5)
        for i in range(10):
            t.event(f"job-{i}", "queued")
        events = t.events_since(0)
        assert len(events) == 5
        assert events[0]["job_id"] == "job-5"

    def test_gauges_pass_through(self):
        snap = Telemetry().snapshot({"queue_depth": 7})
        assert snap["gauges"]["queue_depth"] == 7
