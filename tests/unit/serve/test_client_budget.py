"""ServiceClient retry pacing: fractional Retry-After + sleep budget."""

from __future__ import annotations

import threading
import time
from http.server import ThreadingHTTPServer

import pytest

from repro.serve.client import ServiceClient, ServiceOverloadedError
from repro.serve.wire import JsonRequestHandler, retry_after_hint


class _SheddingHandler(JsonRequestHandler):
    server: "_SheddingServer"

    def do_GET(self):  # noqa: N802
        self.server.requests += 1
        self.send_retry_after(
            503, {"error": "draining"}, self.server.retry_after_s
        )

    do_POST = do_GET


class _SheddingServer(ThreadingHTTPServer):
    """Answers every request with 503 + Retry-After."""

    daemon_threads = True

    def __init__(self, retry_after_s: float):
        super().__init__(("127.0.0.1", 0), _SheddingHandler)
        self.retry_after_s = retry_after_s
        self.requests = 0
        threading.Thread(target=self.serve_forever, daemon=True).start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server_address[1]}"


@pytest.fixture
def shedding():
    server = _SheddingServer(retry_after_s=0.2)
    yield server
    server.shutdown()
    server.server_close()


class TestRetryAfterParsing:
    def test_fractional_header_honoured(self):
        class _Headers(dict):
            def get(self, key, default=None):
                return super().get(key, default)

        assert retry_after_hint(_Headers({"Retry-After": "0.25"}), {}) == 0.25
        assert retry_after_hint(_Headers({"Retry-After": "3"}), {}) == 3.0
        assert retry_after_hint(_Headers(), {"retry_after_s": 0.5}) == 0.5
        assert retry_after_hint(_Headers({"Retry-After": "junk"}), {}) == 0.0

    def test_fractional_pacing_on_the_wire(self, shedding):
        """One retry paced by a 0.2 s hint sleeps >= 0.2 s, not 1 s.

        An integer-only parser would floor "0.2" to nothing (or crash)
        and fall back to exponential backoff; the elapsed window pins
        the fractional value actually being used.
        """
        client = ServiceClient(
            shedding.url, retries=1, retry_backoff_s=0.001, backoff_budget_s=10
        )
        started = time.monotonic()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            client.readyz()
        elapsed = time.monotonic() - started
        assert excinfo.value.retry_after_s == pytest.approx(0.2)
        assert 0.2 <= elapsed < 1.0
        assert shedding.requests == 2


class TestBackoffBudget:
    def test_total_sleep_capped_by_budget(self, shedding):
        """A server advertising long Retry-After cannot stall the client
        past its budget, no matter how many retries are configured."""
        shedding.retry_after_s = 30.0
        client = ServiceClient(
            shedding.url, retries=50, backoff_budget_s=0.3
        )
        started = time.monotonic()
        with pytest.raises(ServiceOverloadedError):
            client.readyz()
        elapsed = time.monotonic() - started
        assert elapsed < 2.0  # budget 0.3 s, not 50 * 30 s
        # budget allows one capped sleep, then the next failure raises
        assert shedding.requests == 2

    def test_exhausted_budget_raises_without_sleeping(self, shedding):
        client = ServiceClient(shedding.url, retries=5, backoff_budget_s=10.0)
        started = time.monotonic()
        with pytest.raises(ServiceOverloadedError):
            # an upstream hop (gateway) already spent the whole budget
            client.request_with_budget("GET", "/readyz", budget_spent_s=10.0)
        assert time.monotonic() - started < 0.5
        assert shedding.requests == 1

    def test_spent_figure_accumulates_across_attempts(self, shedding):
        shedding.retry_after_s = 0.05
        client = ServiceClient(
            shedding.url, retries=2, retry_backoff_s=0.01, backoff_budget_s=10
        )
        with pytest.raises(ServiceOverloadedError):
            client.request_with_budget("GET", "/readyz")
        # separate logical request, pre-charged: sleeps shrink to fit
        with pytest.raises(ServiceOverloadedError):
            client.request_with_budget("GET", "/readyz", budget_spent_s=9.99)

    def test_zero_budget_disables_sleeping_entirely(self, shedding):
        client = ServiceClient(shedding.url, retries=3, backoff_budget_s=0.0)
        started = time.monotonic()
        with pytest.raises(ServiceOverloadedError):
            client.readyz()
        assert time.monotonic() - started < 0.5
        assert shedding.requests == 1
