"""Trace I/O round-trip against a real instrumented run, and the
trace_summary digest used in result payloads."""

import numpy as np

from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.io import load_trace, save_trace, trace_summary
from repro.trace.recorder import NullRecorder
from repro.units import MiB
from repro.workloads.registry import make_workload

_ARRAY_FIELDS = None


def real_trace():
    setup = ExperimentSetup().with_gpu(memory_bytes=16 * MiB)
    result = simulate(make_workload("random", 8 * MiB), setup, record_trace=True)
    return result.trace


class TestRealRunRoundTrip:
    def test_every_stream_bit_identical(self, tmp_path):
        import dataclasses

        trace = real_trace()
        loaded, _ = load_trace(save_trace(trace, tmp_path / "run.npz"))
        for f in dataclasses.fields(type(trace)):
            original = getattr(trace, f.name)
            restored = getattr(loaded, f.name)
            assert original.dtype == restored.dtype, f.name
            assert np.array_equal(original, restored), f.name

    def test_metadata_survives_nested_types(self, tmp_path):
        metadata = {"seed": 7, "ratio": 0.5, "tags": ["a", "b"], "cfg": {"x": 1}}
        _, loaded = load_trace(
            save_trace(real_trace(), tmp_path / "m.npz", metadata=metadata)
        )
        assert loaded == metadata

    def test_save_overwrites_atomically(self, tmp_path):
        trace = real_trace()
        path = save_trace(trace, tmp_path / "t.npz")
        path2 = save_trace(trace, tmp_path / "t.npz")
        assert path == path2
        loaded, _ = load_trace(path)
        assert loaded.n_faults == trace.n_faults


class TestTraceSummary:
    def test_counts_match_streams(self):
        trace = real_trace()
        summary = trace_summary(trace)
        assert summary["n_faults"] == trace.n_faults == trace.fault_page.size
        assert summary["n_evictions"] == trace.n_evictions
        assert summary["n_duplicate_faults"] == int(trace.fault_duplicate.sum())
        assert summary["pages_evicted"] == int(trace.evict_pages.sum())
        assert summary["n_batches"] > 0
        assert summary["n_replays"] >= 0

    def test_summary_is_json_safe(self):
        import json

        assert json.loads(json.dumps(trace_summary(real_trace())))

    def test_empty_trace(self):
        summary = trace_summary(NullRecorder().finalize())
        assert summary["n_faults"] == 0
        assert summary["pages_evicted"] == 0

    def test_summary_survives_round_trip(self, tmp_path):
        trace = real_trace()
        loaded, _ = load_trace(save_trace(trace, tmp_path / "s.npz"))
        assert trace_summary(loaded) == trace_summary(trace)
