"""Unit tests for terminal/CSV rendering."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.export import render_log_bar, render_scatter, render_series, write_csv


class TestScatter:
    def test_renders_points(self):
        plot = render_scatter(np.array([0, 50, 99]), np.array([0, 50, 99]), width=20, height=10)
        assert plot.count("*") >= 3
        assert "+--------------------+" in plot

    def test_hlines_drawn(self):
        plot = render_scatter(np.array([0]), np.array([0]), width=10, height=5, hlines=[50])
        assert "-" * 10 in plot

    def test_overlay_marks(self):
        plot = render_scatter(
            np.array([0]), np.array([0]),
            overlay=(np.array([10]), np.array([10])),
            width=20, height=10,
        )
        assert "x" in plot

    def test_title(self):
        plot = render_scatter(np.array([1]), np.array([1]), title="hello")
        assert plot.startswith("hello")

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            render_scatter(np.array([]), np.array([]))

    def test_mismatched_rejected(self):
        with pytest.raises(TraceError):
            render_scatter(np.array([1]), np.array([1, 2]))


class TestSeries:
    def test_columns_aligned(self):
        table = render_series(
            [("a", 1, 2.5), ("bb", 10, 3.25)],
            headers=("name", "count", "value"),
        )
        lines = table.splitlines()
        assert len({len(l) for l in lines}) == 1  # uniform width

    def test_float_formatting(self):
        table = render_series([(1.23456,)], headers=("v",), floatfmt="{:.2f}")
        assert "1.23" in table

    def test_title_row(self):
        assert render_series([], headers=("x",), title="T").startswith("T")


class TestLogBar:
    def test_bars_scale_logarithmically(self):
        out = render_log_bar(["a", "b"], [1.0, 1000.0], width=30)
        bar_a = out.splitlines()[0].count("#")
        bar_b = out.splitlines()[1].count("#")
        assert bar_b > bar_a

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            render_log_bar([], [])


class TestCsv:
    def test_write_and_content(self, tmp_path):
        path = write_csv(tmp_path / "out" / "data.csv", ("a", "b"), [(1, 2), (3, 4)])
        text = path.read_text()
        assert text.splitlines() == ["a,b", "1,2", "3,4"]
