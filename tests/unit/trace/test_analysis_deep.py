"""Unit tests for the deeper trace-analysis functions."""

import numpy as np
import pytest

from repro.trace.analysis import (
    bin_size_distribution,
    prefetch_ratio,
    refault_distances,
    vablock_residency_lifetimes,
)
from repro.trace.recorder import TraceRecorder


def make_trace(events):
    rec = TraceRecorder()
    for kind, args in events:
        getattr(rec, f"record_{kind}")(*args)
    return rec.finalize()


class TestBinSizes:
    def test_distribution(self):
        trace = make_trace(
            [
                ("service", (10, 0, 5, 100)),
                ("service", (20, 1, 1, 0)),
                ("service", (30, 2, 8, 0)),
            ]
        )
        assert bin_size_distribution(trace).tolist() == [5, 1, 8]


class TestPrefetchRatio:
    def test_ratio(self):
        trace = make_trace([("service", (10, 0, 25, 75))])
        assert prefetch_ratio(trace) == 0.75

    def test_empty(self):
        from repro.trace.recorder import NullRecorder

        assert prefetch_ratio(NullRecorder().finalize()) == 0.0


class TestLifetimes:
    def test_eviction_measured_from_last_service(self):
        trace = make_trace(
            [
                ("service", (100, 7, 1, 0)),
                ("service", (500, 7, 1, 0)),  # block 7 serviced again
                ("eviction", (900, 7, 10, 2)),
            ]
        )
        assert vablock_residency_lifetimes(trace).tolist() == [400]

    def test_eviction_of_never_serviced_block_skipped(self):
        trace = make_trace([("eviction", (900, 3, 1, 0))])
        assert vablock_residency_lifetimes(trace).size == 0

    def test_multiple_blocks_interleaved(self):
        trace = make_trace(
            [
                ("service", (100, 1, 1, 0)),
                ("service", (200, 2, 1, 0)),
                ("eviction", (250, 1, 1, 0)),
                ("eviction", (700, 2, 1, 0)),
            ]
        )
        assert vablock_residency_lifetimes(trace).tolist() == [150, 500]


class TestRefaultDistances:
    def test_distance_counts_faults_after_eviction(self):
        trace = make_trace(
            [
                ("fault", (10, 1, 0, 0, False)),
                ("eviction", (15, 0, 1, 0)),  # after fault index 1
                ("fault", (20, 600, 1, 0, False)),
                ("fault", (30, 2, 0, 0, False)),  # block 0 refaults
            ]
        )
        assert refault_distances(trace).tolist() == [1]

    def test_never_refaulted_is_minus_one(self):
        trace = make_trace(
            [
                ("fault", (10, 600, 1, 0, False)),
                ("eviction", (15, 0, 1, 0)),
                ("fault", (20, 700, 1, 0, False)),
            ]
        )
        assert refault_distances(trace).tolist() == [-1]

    def test_empty(self):
        from repro.trace.recorder import NullRecorder

        assert refault_distances(NullRecorder().finalize()).size == 0


class TestOnRealRuns:
    def test_regular_bins_larger_than_random(self):
        """Section III-D insight, measured: concentrated faults produce
        larger VABlock bins than scattered ones."""
        from repro.experiments.runner import ExperimentSetup, simulate
        from repro.units import MiB
        from repro.workloads.synthetic import RandomAccess, RegularAccess

        setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
        setup = setup.with_driver(prefetch_enabled=False)
        reg = simulate(RegularAccess(16 * MiB), setup, record_trace=True)
        rnd = simulate(RandomAccess(16 * MiB), setup, record_trace=True)
        assert bin_size_distribution(reg.trace).mean() > bin_size_distribution(
            rnd.trace
        ).mean()

    def test_oversubscribed_random_has_short_lifetimes(self):
        from repro.experiments.runner import ExperimentSetup, simulate
        from repro.units import MiB
        from repro.workloads.synthetic import RandomAccess

        setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
        run = simulate(RandomAccess(int(32 * MiB * 1.5)), setup, record_trace=True)
        lifetimes = vablock_residency_lifetimes(run.trace)
        assert lifetimes.size > 0
        distances = refault_distances(run.trace)
        # thrash: a large share of evictions refault soon
        soon = (distances >= 0) & (distances < 5000)
        assert soon.mean() > 0.3
