"""Unit tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import TRACE_FORMAT_VERSION, load_trace, save_trace
from repro.trace.recorder import TraceRecorder


def sample_trace():
    rec = TraceRecorder()
    rec.record_fault(10, page=5, vablock=0, stream=1, duplicate=False)
    rec.record_fault(20, page=600, vablock=1, stream=2, duplicate=True)
    rec.record_service(25, vablock=1, n_demand=1, n_prefetch=15)
    rec.record_eviction(30, vablock=0, n_pages=3, n_dirty=1)
    rec.record_replay(35)
    rec.record_batch(40, n_read=2, n_duplicate=1)
    return rec.finalize()


class TestRoundTrip:
    def test_all_streams_survive(self, tmp_path):
        trace = sample_trace()
        path = save_trace(trace, tmp_path / "t.npz", metadata={"seed": 7})
        loaded, meta = load_trace(path)
        assert meta == {"seed": 7}
        assert loaded.fault_page.tolist() == trace.fault_page.tolist()
        assert loaded.fault_duplicate.tolist() == trace.fault_duplicate.tolist()
        assert loaded.service_prefetch.tolist() == [15]
        assert loaded.evict_fault_index.tolist() == [2]
        assert loaded.replay_time_ns.tolist() == [35]
        assert loaded.batch_duplicate.tolist() == [1]

    def test_suffix_normalized(self, tmp_path):
        path = save_trace(sample_trace(), tmp_path / "t.trace")
        assert path.suffix == ".npz"

    def test_empty_trace_round_trips(self, tmp_path):
        from repro.trace.recorder import NullRecorder

        trace = NullRecorder().finalize()
        loaded, _ = load_trace(save_trace(trace, tmp_path / "e.npz"))
        assert loaded.n_faults == 0

    def test_default_metadata_empty(self, tmp_path):
        _, meta = load_trace(save_trace(sample_trace(), tmp_path / "t.npz"))
        assert meta == {}


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_non_trace_npz_rejected(self, tmp_path):
        np.savez(tmp_path / "x.npz", a=np.arange(3))
        with pytest.raises(TraceError):
            load_trace(tmp_path / "x.npz")

    def test_version_is_written(self, tmp_path):
        import json

        path = save_trace(sample_trace(), tmp_path / "t.npz")
        with np.load(path) as data:
            header = json.loads(bytes(data["__header__"]).decode())
        assert header["format_version"] == TRACE_FORMAT_VERSION
