"""Unit tests for the trace recorder."""

import numpy as np

from repro.trace.recorder import NullRecorder, TraceRecorder


class TestTraceRecorder:
    def test_fault_stream_recorded_in_order(self):
        rec = TraceRecorder()
        rec.record_fault(10, page=5, vablock=0, stream=1, duplicate=False)
        rec.record_fault(20, page=600, vablock=1, stream=2, duplicate=True)
        trace = rec.finalize()
        assert trace.fault_page.tolist() == [5, 600]
        assert trace.fault_duplicate.tolist() == [False, True]
        assert trace.fault_time_ns.tolist() == [10, 20]

    def test_eviction_aligned_with_fault_index(self):
        rec = TraceRecorder()
        rec.record_fault(10, 5, 0, 1, False)
        rec.record_eviction(15, vablock=3, n_pages=100, n_dirty=40)
        rec.record_fault(20, 6, 0, 1, False)
        trace = rec.finalize()
        assert trace.evict_fault_index.tolist() == [1]  # after first fault

    def test_service_and_replay_streams(self):
        rec = TraceRecorder()
        rec.record_service(5, vablock=2, n_demand=3, n_prefetch=13)
        rec.record_replay(9)
        rec.record_batch(10, n_read=256, n_duplicate=12)
        trace = rec.finalize()
        assert trace.service_prefetch.tolist() == [13]
        assert trace.replay_time_ns.tolist() == [9]
        assert trace.batch_duplicate.tolist() == [12]

    def test_counts(self):
        rec = TraceRecorder()
        rec.record_fault(1, 2, 0, 0, False)
        trace = rec.finalize()
        assert trace.n_faults == 1
        assert trace.n_evictions == 0


class TestNullRecorder:
    def test_discards_everything(self):
        rec = NullRecorder()
        rec.record_fault(1, 2, 0, 0, False)
        rec.record_eviction(1, 0, 1, 1)
        rec.record_service(1, 0, 1, 1)
        rec.record_replay(1)
        rec.record_batch(1, 1, 0)
        trace = rec.finalize()
        assert trace.n_faults == 0
        assert trace.n_evictions == 0

    def test_enabled_flags(self):
        assert TraceRecorder().enabled
        assert not NullRecorder().enabled
