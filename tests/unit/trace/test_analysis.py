"""Unit tests for trace analysis."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.mem.address_space import AddressSpace
from repro.trace.analysis import (
    duplicate_rate,
    eviction_summary,
    extract_access_pattern,
    fault_reduction,
    faults_per_vablock,
)
from repro.trace.recorder import TraceRecorder
from repro.units import MiB


@pytest.fixture
def space():
    s = AddressSpace()
    s.malloc_managed(2 * MiB, name="A")  # pages 0..511
    s.malloc_managed(3 * 4096, name="B")  # pages 512..514 (+pad to 1024)
    return s


class TestFaultReduction:
    def test_table_one_arithmetic(self):
        """Regular row of Table I: 2493569 -> 442011 is 82.27%."""
        assert fault_reduction(2493569, 442011) == pytest.approx(82.27, abs=0.01)

    def test_zero_baseline(self):
        assert fault_reduction(0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(TraceError):
            fault_reduction(-1, 0)


class TestAccessPattern:
    def _trace(self):
        rec = TraceRecorder()
        rec.record_fault(0, page=0, vablock=0, stream=0, duplicate=False)
        rec.record_fault(1, page=513, vablock=1, stream=1, duplicate=False)
        rec.record_fault(2, page=0, vablock=0, stream=2, duplicate=True)
        rec.record_eviction(3, vablock=0, n_pages=2, n_dirty=0)
        return rec.finalize()

    def test_gap_adjustment_removes_padding(self, space):
        pattern = extract_access_pattern(self._trace(), space)
        # page 513 is the second page of range B -> adjusted index 512+1
        assert pattern.page_index.tolist() == [0, 513]

    def test_duplicates_excluded_by_default(self, space):
        pattern = extract_access_pattern(self._trace(), space)
        assert pattern.n_faults == 2
        assert pattern.occurrence.tolist() == [0, 1]

    def test_duplicates_included_on_request(self, space):
        pattern = extract_access_pattern(self._trace(), space, include_duplicates=True)
        assert pattern.n_faults == 3

    def test_range_boundaries(self, space):
        pattern = extract_access_pattern(self._trace(), space)
        assert pattern.range_boundaries == [0, 512]
        assert pattern.range_names == ["A", "B"]

    def test_eviction_overlay(self, space):
        pattern = extract_access_pattern(self._trace(), space)
        assert pattern.eviction_occurrence.tolist() == [3]
        assert pattern.eviction_page_index.tolist() == [0]

    def test_empty_trace_rejected(self, space):
        from repro.trace.recorder import NullRecorder

        with pytest.raises(TraceError):
            extract_access_pattern(NullRecorder().finalize(), space)


class TestAggregates:
    def test_eviction_summary(self):
        s = eviction_summary(n_faults=1000, n_evictions=50, pages_evicted=2000)
        assert s.evictions_per_fault == 0.05
        assert s.pages_evicted_per_fault == 2.0

    def test_eviction_summary_zero_faults(self):
        assert eviction_summary(0, 0, 0).evictions_per_fault == 0.0

    def test_duplicate_rate(self):
        rec = TraceRecorder()
        rec.record_fault(0, 1, 0, 0, False)
        rec.record_fault(1, 1, 0, 0, True)
        assert duplicate_rate(rec.finalize()) == 0.5

    def test_faults_per_vablock(self):
        rec = TraceRecorder()
        rec.record_fault(0, 1, 0, 0, False)
        rec.record_fault(1, 600, 1, 0, False)
        rec.record_fault(2, 601, 1, 0, False)
        rec.record_fault(3, 601, 1, 0, True)  # duplicate excluded
        hist = faults_per_vablock(rec.finalize(), total_vablocks=4)
        assert hist.tolist() == [1, 2, 0, 0]
