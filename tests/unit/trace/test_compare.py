"""Unit tests for A/B run comparison."""

import pytest

from repro.experiments.runner import ExperimentSetup, simulate
from repro.trace.compare import ComparisonRow, compare_runs
from repro.units import MiB
from repro.workloads.synthetic import RegularAccess


@pytest.fixture(scope="module")
def pair():
    setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
    a = simulate(RegularAccess(8 * MiB), setup)
    b = simulate(RegularAccess(8 * MiB), setup.with_driver(prefetch_enabled=False))
    return a, b


class TestComparisonRow:
    def test_ratio(self):
        assert ComparisonRow("x", 10.0, 25.0).ratio == 2.5

    def test_zero_baseline(self):
        assert ComparisonRow("x", 0.0, 5.0).ratio == float("inf")
        assert ComparisonRow("x", 0.0, 0.0).ratio == 1.0


class TestCompareRuns:
    def test_headline_metrics_present(self, pair):
        comparison = compare_runs(*pair, "pf", "no-pf")
        for metric in ("total time (us)", "faults read", "evictions", "MiB moved"):
            comparison.row(metric)

    def test_prefetch_effect_visible(self, pair):
        comparison = compare_runs(*pair, "pf", "no-pf")
        assert comparison.row("faults read").ratio > 2  # no-pf faults more
        assert comparison.row("prefetched pages").b == 0
        assert comparison.row("total time (us)").ratio > 1

    def test_category_rows(self, pair):
        comparison = compare_runs(*pair)
        assert comparison.row("service (us)").a > 0

    def test_extra_counters(self, pair):
        comparison = compare_runs(*pair, extra_counters=("batches.count",))
        assert comparison.row("batches.count").a >= 1

    def test_render(self, pair):
        out = compare_runs(*pair, "pf", "no-pf").render("demo")
        assert out.startswith("demo")
        assert "b/a" in out
        assert "no-pf" in out

    def test_unknown_metric_raises(self, pair):
        with pytest.raises(KeyError):
            compare_runs(*pair).row("nope")


class TestCompareCli:
    def test_cli_compare_variant(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "compare",
                "regular",
                "--vs",
                "no-prefetch",
                "--data-mib",
                "4",
                "--gpu-mem-mib",
                "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stock vs no-prefetch" in out

    def test_cli_unknown_variant(self, capsys):
        from repro.cli import main

        assert (
            main(["compare", "regular", "--vs", "warp-speed", "--data-mib", "2"]) == 2
        )
