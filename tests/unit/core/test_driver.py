"""Unit tests for the top-level UVM driver loop."""

import numpy as np
import pytest

from repro.core.driver import DriverConfig, UvmDriver
from repro.core.replay import ReplayPolicyKind
from repro.errors import ConfigurationError, SimulationError
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.trace.recorder import TraceRecorder
from repro.units import MiB


def build_driver(data_mib=4, gpu_mib=16, streams=None, recorder=None, **driver_kwargs):
    space = AddressSpace()
    buf = space.malloc_managed(data_mib * MiB)
    if streams is None:
        streams = [
            WarpStream(i, np.array([p], dtype=np.int64))
            for i, p in enumerate(buf.pages())
        ]
    return UvmDriver(
        space=space,
        streams=streams,
        driver_config=DriverConfig(**driver_kwargs),
        gpu_config=GpuDeviceConfig(memory_bytes=gpu_mib * MiB),
        rng=SimRng(1),
        recorder=recorder,
    )


class TestConfigValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            DriverConfig(batch_size=0)

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            DriverConfig(density_threshold=0)

    def test_bad_prefetcher_kind(self):
        with pytest.raises(ConfigurationError):
            DriverConfig(prefetcher_kind="oracle")

    def test_bad_eviction_policy(self):
        with pytest.raises(ConfigurationError):
            DriverConfig(eviction_policy="random")

    def test_gpu_smaller_than_vablock_rejected(self):
        space = AddressSpace()
        space.malloc_managed(2 * MiB)
        with pytest.raises(ConfigurationError):
            UvmDriver(
                space=space,
                streams=[],
                gpu_config=GpuDeviceConfig(memory_bytes=1 * MiB),
            )

    def test_access_counter_policy_requires_tracking(self):
        space = AddressSpace()
        space.malloc_managed(2 * MiB)
        with pytest.raises(ConfigurationError):
            UvmDriver(
                space=space,
                streams=[],
                driver_config=DriverConfig(eviction_policy="access_counter"),
            )


class TestRunCompletion:
    def test_every_access_eventually_satisfied(self):
        driver = build_driver()
        result = driver.run()
        assert result.counters["gpu.accesses"] == 1024
        assert driver.device.kernel_finished()

    def test_all_touched_pages_resident_after_run(self):
        driver = build_driver()
        driver.run()
        assert driver.residency.resident[:1024].all()
        driver.residency.check_invariants()
        driver.gpu_table.check_against_residency(driver.residency.resident)

    def test_run_is_single_shot(self):
        driver = build_driver()
        driver.run()
        with pytest.raises(SimulationError):
            driver.run()

    def test_empty_stream_list_finishes_fast(self):
        driver = build_driver(streams=[])
        result = driver.run()
        assert result.faults_read == 0
        assert result.total_time_ns == driver.cost.session_base_ns

    def test_result_fields_populated(self):
        result = build_driver().run()
        assert result.total_time_ns > 0
        assert result.faults_serviced > 0
        assert result.data_bytes == 4 * MiB
        assert result.gpu_phases > 0
        assert result.n_streams == 1024

    def test_session_base_charged_once(self):
        from repro.sim.costmodel import CostModel

        result = build_driver().run()
        assert result.timer.leaf_ns("init") == CostModel().session_base_ns


class TestPolicyIntegration:
    @pytest.mark.parametrize("policy", list(ReplayPolicyKind))
    def test_all_policies_complete(self, policy):
        driver = build_driver(replay_policy=policy, prefetch_enabled=False)
        result = driver.run()
        assert result.faults_serviced == 1024
        assert driver.device.kernel_finished()

    def test_batch_flush_produces_no_duplicates(self):
        result = build_driver(
            replay_policy=ReplayPolicyKind.BATCH_FLUSH, prefetch_enabled=False
        ).run()
        assert result.counters["faults.duplicate"] == 0

    def test_block_policy_replays_most(self):
        block = build_driver(
            replay_policy=ReplayPolicyKind.BLOCK, prefetch_enabled=False
        ).run()
        once = build_driver(
            replay_policy=ReplayPolicyKind.ONCE, prefetch_enabled=False
        ).run()
        assert block.counters["replays.issued"] > once.counters["replays.issued"]


class TestTracing:
    def test_trace_faults_match_counters(self):
        recorder = TraceRecorder()
        driver = build_driver(recorder=recorder, prefetch_enabled=False)
        result = driver.run()
        assert result.trace.n_faults == result.faults_read
        unique = (~result.trace.fault_duplicate).sum()
        assert unique == result.faults_serviced

    def test_null_recorder_default(self):
        result = build_driver().run()
        assert result.trace.n_faults == 0  # nothing recorded


class TestBreakdowns:
    def test_breakdown_covers_total(self):
        result = build_driver().run()
        bd = result.breakdown()
        assert bd.total_ns == result.total_time_ns

    def test_service_breakdown_nonzero(self):
        result = build_driver().run()
        sb = result.service_breakdown()
        assert sb.rows["service.migrate"] > 0
        assert sb.rows["service.pma_alloc"] > 0
