"""Unit tests for the four replay policies."""

import pytest

from repro.core.replay import (
    BatchFlushReplayPolicy,
    BatchReplayPolicy,
    BlockReplayPolicy,
    OnceReplayPolicy,
    ReplayPolicyKind,
    make_replay_policy,
)
from repro.errors import ConfigurationError


class TestFactory:
    def test_all_kinds_constructible(self):
        for kind in ReplayPolicyKind:
            policy = make_replay_policy(kind)
            assert policy.kind is kind

    def test_string_names(self):
        assert isinstance(make_replay_policy("block"), BlockReplayPolicy)
        assert isinstance(make_replay_policy("BATCH_FLUSH"), BatchFlushReplayPolicy)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_replay_policy("yolo")


class TestBlockPolicy:
    def test_replays_after_every_vablock(self):
        policy = BlockReplayPolicy()
        assert policy.after_vablock().issue_replay
        assert not policy.after_batch().issue_replay
        assert not policy.after_buffer_drained().issue_replay

    def test_never_flushes(self):
        policy = BlockReplayPolicy()
        assert not policy.after_vablock().flush_buffer
        assert not policy.after_batch().flush_buffer


class TestBatchPolicy:
    def test_replays_after_batch_without_flush(self):
        policy = BatchReplayPolicy()
        action = policy.after_batch()
        assert action.issue_replay
        assert not action.flush_buffer
        assert not policy.after_vablock().issue_replay


class TestBatchFlushPolicy:
    def test_flushes_then_replays_after_batch(self):
        """The driver default: flush before replay prevents duplicates
        at the cost of remote queue management (Section III-E)."""
        action = BatchFlushReplayPolicy().after_batch()
        assert action.flush_buffer
        assert action.issue_replay


class TestOncePolicy:
    def test_replays_only_when_buffer_drained(self):
        policy = OnceReplayPolicy()
        assert not policy.after_vablock().issue_replay
        assert not policy.after_batch().issue_replay
        assert policy.after_buffer_drained().issue_replay
