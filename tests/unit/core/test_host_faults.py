"""Unit tests for the CPU-side fault path (host access between kernels)."""

import numpy as np
import pytest

from repro.core.driver import UvmDriver
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.units import MiB
from repro.workloads.base import HostAccess, KernelPhase


def page_streams(pages, base_id=0):
    return [
        WarpStream(base_id + i, np.array([p], dtype=np.int64))
        for i, p in enumerate(pages)
    ]


def build_driver(phases, gpu_mib=16):
    space = AddressSpace()
    space.malloc_managed(4 * MiB)
    return UvmDriver(
        space=space,
        phases=phases,
        gpu_config=GpuDeviceConfig(memory_bytes=gpu_mib * MiB),
        rng=SimRng(3),
    )


class TestHostAccess:
    def test_host_touch_migrates_resident_pages_back(self):
        phases = [
            KernelPhase(streams=page_streams(range(32))),
            KernelPhase(
                streams=page_streams(range(32), base_id=100),
                host_before=HostAccess(pages=np.arange(8, dtype=np.int64)),
            ),
        ]
        driver = build_driver(phases)
        result = driver.run()
        assert result.counters["host.pages_d2h"] >= 8
        assert result.counters["host.faults"] >= 1
        # the second kernel re-faulted the migrated pages
        assert result.counters["gpu.accesses"] == 64
        assert driver.residency.resident[:8].all()  # re-migrated by kernel 2

    def test_host_touch_of_host_resident_data_is_free(self):
        phases = [
            KernelPhase(
                streams=page_streams(range(4)),
                host_before=HostAccess(pages=np.arange(100, 104, dtype=np.int64)),
            ),
        ]
        result = build_driver(phases).run()
        assert result.counters["host.faults"] == 0
        assert result.counters["host.pages_d2h"] == 0

    def test_page_tables_stay_consistent(self):
        phases = [
            KernelPhase(streams=page_streams(range(64))),
            KernelPhase(
                streams=page_streams([0], base_id=200),
                host_before=HostAccess(pages=np.arange(0, 64, 4, dtype=np.int64)),
            ),
        ]
        driver = build_driver(phases)
        driver.run()
        driver.residency.check_invariants()
        driver.gpu_table.check_against_residency(driver.residency.resident)
        assert not (driver.gpu_table.mapped & driver.host_table.mapped).any()

    def test_host_fault_cost_charged(self):
        phases = [
            KernelPhase(streams=page_streams(range(32))),
            KernelPhase(
                streams=page_streams([0], base_id=300),
                host_before=HostAccess(pages=np.arange(16, dtype=np.int64)),
            ),
        ]
        result = build_driver(phases).run()
        assert result.timer.total_ns("host_fault") > 0
        assert result.dma.d2h_bytes >= 16 * 4096

    def test_backing_survives_host_migration(self):
        """CPU faults move pages, not allocations: the VABlock stays
        backed and on the eviction list."""
        phases = [
            KernelPhase(streams=page_streams(range(16))),
            KernelPhase(
                streams=page_streams([20], base_id=400),
                host_before=HostAccess(pages=np.arange(16, dtype=np.int64)),
            ),
        ]
        driver = build_driver(phases)
        driver.run()
        assert driver.residency.backed[0]
        assert 0 in driver.lru


class TestPhaseValidation:
    def test_streams_and_phases_mutually_exclusive(self):
        space = AddressSpace()
        space.malloc_managed(2 * MiB)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            UvmDriver(
                space=space,
                streams=page_streams([0]),
                phases=[KernelPhase(streams=page_streams([1]))],
            )

    def test_multi_kernel_without_host_access(self):
        phases = [
            KernelPhase(streams=page_streams(range(8))),
            KernelPhase(streams=page_streams(range(8, 16), base_id=50)),
        ]
        result = build_driver(phases).run()
        assert result.counters["gpu.accesses"] == 16
        assert result.n_streams == 16
