"""Unit tests for the physical memory allocator."""

import pytest

from repro.core.pma import PhysicalMemoryAllocator
from repro.errors import ConfigurationError, SimulationError
from repro.sim.costmodel import CostModel
from repro.units import MiB, VABLOCK_SIZE


@pytest.fixture
def pma():
    return PhysicalMemoryAllocator(CostModel(), capacity_bytes=64 * MiB)


class TestReservation:
    def test_first_reserve_pays_proprietary_call(self, pma):
        cost = pma.reserve(VABLOCK_SIZE)
        assert cost == CostModel().pma_call_ns
        assert pma.stats.calls == 1
        assert pma.used_bytes == VABLOCK_SIZE

    def test_over_allocation_caches(self, pma):
        """The chunk refill makes subsequent reservations free - the
        'relatively constant and negligible at large sizes' behaviour."""
        pma.reserve(VABLOCK_SIZE)
        chunk = CostModel().pma_chunk_bytes
        free_reserves = chunk // VABLOCK_SIZE - 1
        for _ in range(free_reserves):
            assert pma.reserve(VABLOCK_SIZE) == 0
        assert pma.stats.calls == 1
        assert pma.stats.cache_hits == free_reserves

    def test_chunk_bounded_by_device_memory(self):
        small = PhysicalMemoryAllocator(CostModel(), capacity_bytes=4 * MiB)
        small.reserve(VABLOCK_SIZE)  # chunk request clamps to 4 MiB
        assert small.unclaimed_bytes == 0
        assert small.cache_bytes == 4 * MiB - VABLOCK_SIZE

    def test_reserve_beyond_capacity_raises(self):
        small = PhysicalMemoryAllocator(CostModel(), capacity_bytes=2 * MiB)
        small.reserve(VABLOCK_SIZE)
        assert not small.can_reserve(VABLOCK_SIZE)
        with pytest.raises(SimulationError):
            small.reserve(VABLOCK_SIZE)

    def test_invalid_sizes(self, pma):
        with pytest.raises(ConfigurationError):
            pma.reserve(0)
        with pytest.raises(ConfigurationError):
            PhysicalMemoryAllocator(CostModel(), capacity_bytes=0)


class TestRelease:
    def test_release_returns_to_cache(self, pma):
        pma.reserve(VABLOCK_SIZE)
        cache_before = pma.cache_bytes
        pma.release(VABLOCK_SIZE)
        assert pma.cache_bytes == cache_before + VABLOCK_SIZE
        assert pma.used_bytes == 0

    def test_steady_state_eviction_cycle_is_call_free(self):
        """Evict/allocate cycles after warm-up never call the driver."""
        pma = PhysicalMemoryAllocator(CostModel(), capacity_bytes=8 * MiB)
        for _ in range(4):
            pma.reserve(VABLOCK_SIZE)
        calls_after_warmup = pma.stats.calls
        for _ in range(100):
            pma.release(VABLOCK_SIZE)
            pma.reserve(VABLOCK_SIZE)
        assert pma.stats.calls == calls_after_warmup

    def test_release_more_than_used_rejected(self, pma):
        with pytest.raises(SimulationError):
            pma.release(VABLOCK_SIZE)


class TestConservation:
    def test_pools_always_sum_to_capacity(self, pma):
        pma.reserve(VABLOCK_SIZE)
        pma.reserve(VABLOCK_SIZE)
        pma.release(VABLOCK_SIZE)
        total = pma.unclaimed_bytes + pma.cache_bytes + pma.used_bytes
        assert total == 64 * MiB

    def test_available_bytes(self, pma):
        assert pma.available_bytes == 64 * MiB
        pma.reserve(VABLOCK_SIZE)
        assert pma.available_bytes == 64 * MiB - VABLOCK_SIZE
