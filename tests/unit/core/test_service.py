"""Unit tests for the fault servicer (alloc/evict/prefetch/migrate/map)."""

import numpy as np
import pytest

from repro.core.eviction import LruEvictionPolicy
from repro.core.pma import PhysicalMemoryAllocator
from repro.core.prefetch import TreePrefetcher
from repro.core.preprocess import VABlockBin
from repro.core.service import FaultServicer
from repro.gpu.dma import DmaEngine
from repro.mem.address_space import AddressSpace
from repro.mem.page_table import PageTable
from repro.mem.residency import ResidencyState
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.stats import CategoryTimer, CounterSet
from repro.trace.recorder import TraceRecorder
from repro.units import MiB


def make_bin(pages, writes=None, vablock=None):
    pages = np.asarray(pages, dtype=np.int64)
    if writes is None:
        writes = np.zeros(pages.shape, dtype=bool)
    vb = int(pages[0]) // 512 if vablock is None else vablock
    return VABlockBin(
        vablock_id=vb,
        pages=pages,
        writes=np.asarray(writes, dtype=bool),
        stream_ids=np.zeros(pages.shape, dtype=np.int64),
        sm_ids=np.zeros(pages.shape, dtype=np.int64),
    )


class Harness:
    def __init__(self, gpu_mib=8, data_mib=8, prefetcher=None):
        self.space = AddressSpace()
        self.space.malloc_managed(data_mib * MiB)
        self.cost = CostModel()
        self.clock = SimClock()
        self.residency = ResidencyState(self.space)
        self.gpu_table = PageTable(self.space, "gpu")
        self.host_table = PageTable(self.space, "host")
        self.host_table.mapped[:] = True
        self.pma = PhysicalMemoryAllocator(self.cost, gpu_mib * MiB)
        self.lru = LruEvictionPolicy()
        self.dma = DmaEngine(self.cost, self.space.page_size)
        self.timer = CategoryTimer()
        self.counters = CounterSet()
        self.recorder = TraceRecorder()
        self.servicer = FaultServicer(
            residency=self.residency,
            gpu_table=self.gpu_table,
            host_table=self.host_table,
            pma=self.pma,
            lru=self.lru,
            dma=self.dma,
            cost=self.cost,
            clock=self.clock,
            timer=self.timer,
            counters=self.counters,
            recorder=self.recorder,
            prefetcher=prefetcher,
        )


class TestDemandService:
    def test_pages_become_resident_and_mapped(self):
        h = Harness()
        outcome = h.servicer.service_bin(make_bin([1, 2, 3]))
        assert outcome.n_demand == 3
        assert h.residency.resident[[1, 2, 3]].all()
        assert h.gpu_table.mapped[[1, 2, 3]].all()
        assert not h.host_table.mapped[[1, 2, 3]].any()

    def test_write_faults_mark_dirty(self):
        h = Harness()
        h.servicer.service_bin(make_bin([1, 2], writes=[True, False]))
        assert h.residency.dirty[1]
        assert not h.residency.dirty[2]

    def test_costs_charged_to_paper_categories(self):
        h = Harness()
        h.servicer.service_bin(make_bin([1]))
        assert h.timer.total_ns("service.pma_alloc") > 0
        assert h.timer.total_ns("service.migrate") > 0
        assert h.timer.total_ns("service.map") > 0
        assert h.clock.now == h.timer.total_ns()

    def test_lru_tracks_serviced_block(self):
        h = Harness()
        h.servicer.service_bin(make_bin([1]))
        h.servicer.service_bin(make_bin([600]))
        h.servicer.service_bin(make_bin([2]))  # re-fault block 0: promote
        assert h.lru.order() == [1, 0]

    def test_second_service_skips_pma_call(self):
        h = Harness()
        h.servicer.service_bin(make_bin([1]))
        calls = h.pma.stats.calls
        h.servicer.service_bin(make_bin([2]))
        assert h.pma.stats.calls == calls

    def test_residency_invariants_hold(self):
        h = Harness()
        h.servicer.service_bin(make_bin([1, 5, 200], writes=[True, True, False]))
        h.residency.check_invariants()
        h.gpu_table.check_against_residency(h.residency.resident)


class TestPrefetchIntegration:
    def test_prefetched_pages_arrive_clean(self):
        h = Harness(prefetcher=TreePrefetcher())
        outcome = h.servicer.service_bin(make_bin([0], writes=[True]))
        assert outcome.n_prefetch == 15
        assert h.residency.resident[:16].all()
        assert h.residency.dirty[0]
        assert not h.residency.dirty[1:16].any()

    def test_prefetch_counted_separately(self):
        h = Harness(prefetcher=TreePrefetcher(threshold=1))
        h.servicer.service_bin(make_bin([0]))
        assert h.counters["pages.prefetch_h2d"] == 511
        assert h.counters["pages.demand_h2d"] == 1


class TestEvictionPath:
    def test_eviction_triggered_when_memory_full(self):
        h = Harness(gpu_mib=4, data_mib=8)  # 2-block GPU, 4-block data
        h.servicer.service_bin(make_bin([0]))
        h.servicer.service_bin(make_bin([512]))
        outcome = h.servicer.service_bin(make_bin([1024]))
        assert outcome.n_evictions == 1
        assert h.counters["evictions.count"] == 1
        assert not h.residency.backed[0]  # LRU victim was block 0

    def test_eviction_writes_back_dirty_pages(self):
        h = Harness(gpu_mib=4, data_mib=8)
        h.servicer.service_bin(make_bin([0, 1], writes=[True, False]))
        h.servicer.service_bin(make_bin([512]))
        h.servicer.service_bin(make_bin([1024]))
        assert h.counters["evictions.pages_dirty"] == 1
        assert h.counters["evictions.pages_dropped"] == 2
        assert h.dma.stats.d2h_bytes == 4096

    def test_evicted_pages_rehosted(self):
        h = Harness(gpu_mib=4, data_mib=8)
        h.servicer.service_bin(make_bin([0]))
        h.servicer.service_bin(make_bin([512]))
        h.servicer.service_bin(make_bin([1024]))
        assert h.host_table.mapped[0]
        assert not h.gpu_table.mapped[0]

    def test_faulting_block_never_evicts_itself(self):
        h = Harness(gpu_mib=2, data_mib=8)  # single-block GPU
        h.servicer.service_bin(make_bin([0]))
        h.servicer.service_bin(make_bin([512]))  # must evict block 0
        assert h.residency.backed[1]
        assert not h.residency.backed[0]

    def test_eviction_charged_to_service_evict(self):
        h = Harness(gpu_mib=4, data_mib=8)
        for page in (0, 512, 1024):
            h.servicer.service_bin(make_bin([page]))
        assert h.timer.total_ns("service.evict") > 0

    def test_trace_records_eviction(self):
        h = Harness(gpu_mib=4, data_mib=8)
        for page in (0, 512, 1024):
            h.servicer.service_bin(make_bin([page]))
        trace = h.recorder.finalize()
        assert trace.n_evictions == 1
        assert trace.evict_vablock.tolist() == [0]
