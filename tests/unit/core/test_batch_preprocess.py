"""Unit tests for batch assembly and pre-processing."""

import numpy as np
import pytest

from repro.core.batch import assemble_batch
from repro.core.preprocess import preprocess_batch
from repro.gpu.fault_buffer import FaultBuffer, FaultEntry
from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB


def entry(page, write=False, t=0, stream=0, sm=0):
    return FaultEntry(
        page=page,
        is_write=write,
        timestamp_ns=t,
        gpc_id=0,
        utlb_id=0,
        stream_id=stream,
        sm_id=sm,
    )


@pytest.fixture
def residency():
    space = AddressSpace()
    space.malloc_managed(4 * MiB)  # 2 VABlocks
    return ResidencyState(space)


class TestAssembleBatch:
    def test_drains_up_to_batch_size(self):
        buf = FaultBuffer(capacity=100, ready_delay_ns=0)
        for p in range(10):
            buf.try_push(entry(p))
        batch = assemble_batch(buf, now_ns=10**6, batch_size=4)
        assert len(batch) == 4
        assert len(buf) == 6

    def test_stops_at_empty_queue(self):
        buf = FaultBuffer(capacity=100, ready_delay_ns=0)
        buf.try_push(entry(1))
        batch = assemble_batch(buf, now_ns=10**6, batch_size=256)
        assert len(batch) == 1

    def test_accumulates_polls(self):
        buf = FaultBuffer(capacity=100, ready_delay_ns=1000)
        for p in range(3):
            buf.try_push(entry(p, t=0))
        batch = assemble_batch(buf, now_ns=0, batch_size=3)
        assert batch.polls >= 3

    def test_pages_accessor(self):
        buf = FaultBuffer(capacity=100, ready_delay_ns=0)
        buf.try_push(entry(9))
        batch = assemble_batch(buf, 10**6, 10)
        assert batch.pages == [9]

    def test_stop_at_not_ready_closes_batch_early(self):
        buf = FaultBuffer(capacity=100, ready_delay_ns=1000)
        buf.try_push(entry(1, t=0))  # ready at 1000
        buf.try_push(entry(2, t=0))  # ready at 1000
        buf.try_push(entry(3, t=5000))  # ready at 6000
        batch = assemble_batch(buf, now_ns=2000, batch_size=10, stop_at_not_ready=True)
        assert batch.pages == [1, 2]
        assert batch.polls == 0
        assert len(buf) == 1  # unready entry left queued

    def test_stop_policy_still_makes_progress_when_nothing_ready(self):
        """An all-unready queue must not produce an empty batch forever:
        the first entry is polled for."""
        buf = FaultBuffer(capacity=100, ready_delay_ns=1000)
        buf.try_push(entry(1, t=5000))
        batch = assemble_batch(buf, now_ns=0, batch_size=10, stop_at_not_ready=True)
        assert batch.pages == [1]
        assert batch.polls >= 1


class TestPreprocess:
    def _batch(self, entries):
        from repro.core.batch import FaultBatch

        return FaultBatch(entries=entries)

    def test_bins_by_vablock_sorted(self, residency):
        batch = self._batch([entry(600), entry(5), entry(700), entry(1)])
        pre = preprocess_batch(batch, residency)
        assert [b.vablock_id for b in pre.bins] == [0, 1]
        assert pre.bins[0].pages.tolist() == [1, 5]
        assert pre.bins[1].pages.tolist() == [600, 700]

    def test_stale_duplicates_filtered(self, residency):
        residency.back_vablock(0)
        residency.make_resident(np.array([5]))
        batch = self._batch([entry(5), entry(6)])
        pre = preprocess_batch(batch, residency)
        assert pre.n_duplicate == 1
        assert pre.n_unique == 1
        assert pre.bins[0].pages.tolist() == [6]

    def test_intra_batch_duplicates_collapse(self, residency):
        batch = self._batch([entry(7, stream=1), entry(7, stream=2)])
        pre = preprocess_batch(batch, residency)
        assert pre.n_duplicate == 1
        assert pre.bins[0].pages.tolist() == [7]
        # first occurrence's origin is kept
        assert pre.bins[0].stream_ids.tolist() == [1]

    def test_write_intent_ored_across_duplicates(self, residency):
        batch = self._batch([entry(7, write=False), entry(7, write=True)])
        pre = preprocess_batch(batch, residency)
        assert pre.bins[0].writes.tolist() == [True]

    def test_entry_duplicate_mask_alignment(self, residency):
        residency.back_vablock(0)
        residency.make_resident(np.array([1]))
        batch = self._batch([entry(1), entry(2), entry(2), entry(3)])
        pre = preprocess_batch(batch, residency)
        assert pre.entry_duplicate.tolist() == [True, False, True, False]

    def test_empty_batch(self, residency):
        pre = preprocess_batch(self._batch([]), residency)
        assert pre.n_read == 0
        assert pre.bins == []

    def test_all_stale_batch(self, residency):
        residency.back_vablock(0)
        residency.make_resident(np.array([1, 2]))
        pre = preprocess_batch(self._batch([entry(1), entry(2)]), residency)
        assert pre.n_duplicate == 2
        assert pre.bins == []

    def test_sm_ids_preserved(self, residency):
        batch = self._batch([entry(4, sm=13)])
        pre = preprocess_batch(batch, residency)
        assert pre.bins[0].sm_ids.tolist() == [13]
