"""Unit tests for canonical counter names."""

from repro.core import counters as C


class TestCounterNames:
    def test_all_counters_enumerated(self):
        assert C.FAULTS_READ in C.ALL_COUNTERS
        assert C.EVICTIONS in C.ALL_COUNTERS
        assert len(C.ALL_COUNTERS) >= 20

    def test_names_are_namespaced(self):
        for name in C.ALL_COUNTERS:
            assert "." in name, f"counter {name!r} lacks a namespace"

    def test_no_duplicate_names(self):
        assert len(set(C.ALL_COUNTERS)) == len(C.ALL_COUNTERS)

    def test_table_one_counter_is_driver_observed(self):
        """Table I counts driver-observed faults: reads, not services."""
        assert C.FAULTS_READ == "faults.read"
        assert C.FAULTS_SERVICED != C.FAULTS_READ
