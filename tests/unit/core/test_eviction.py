"""Unit tests for the fault-driven LRU eviction policy."""

import pytest

from repro.core.eviction import LruEvictionPolicy
from repro.errors import OutOfDeviceMemoryError, SimulationError


@pytest.fixture
def lru():
    policy = LruEvictionPolicy()
    for vb in (1, 2, 3):
        policy.insert(vb)
    return policy


class TestOrdering:
    def test_insertion_order_is_recency(self, lru):
        assert lru.order() == [1, 2, 3]  # 1 is LRU

    def test_touch_promotes_to_mru(self, lru):
        lru.touch(1)
        assert lru.order() == [2, 3, 1]

    def test_victim_is_lru_end(self, lru):
        assert lru.select_victim() == 1

    def test_victim_respects_exclusion(self, lru):
        assert lru.select_victim(exclude=(1,)) == 2

    def test_evict_victim_unlinks(self, lru):
        victim = lru.evict_victim()
        assert victim == 1
        assert 1 not in lru
        assert len(lru) == 2

    def test_all_excluded_raises(self, lru):
        with pytest.raises(OutOfDeviceMemoryError):
            lru.evict_victim(exclude=(1, 2, 3))

    def test_select_victim_none_when_empty(self):
        assert LruEvictionPolicy().select_victim() is None


class TestPaperPathology:
    def test_hot_resident_block_sinks_without_faults(self, lru):
        """Section VI-A: fully-resident blocks are never promoted, so
        the hottest data descends toward eviction."""
        # blocks 2 and 3 keep faulting; block 1 is fully resident (hot
        # on the GPU but invisible to the driver)
        for _ in range(5):
            lru.touch(2)
            lru.touch(3)
        assert lru.select_victim() == 1


class TestErrors:
    def test_double_insert(self, lru):
        with pytest.raises(SimulationError):
            lru.insert(1)

    def test_touch_unknown(self, lru):
        with pytest.raises(SimulationError):
            lru.touch(99)

    def test_remove_unknown(self, lru):
        with pytest.raises(SimulationError):
            lru.remove(99)

    def test_counters(self, lru):
        lru.touch(2)
        lru.remove(3)
        assert lru.insertions == 3
        assert lru.promotions == 1
        assert lru.removals == 1
