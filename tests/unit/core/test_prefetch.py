"""Unit tests for the two-stage density prefetcher."""

import numpy as np
import pytest

from repro.core.prefetch import TreePrefetcher
from repro.errors import ConfigurationError


@pytest.fixture
def pf():
    return TreePrefetcher()  # threshold 51, 512 leaves, 16-leaf big pages


class TestStageOneBigPageUpgrade:
    def test_single_fault_upgrades_its_big_page(self, pf):
        decision = pf.compute(np.zeros(512, dtype=bool), np.array([5]))
        # 16-page group minus the demand page itself
        assert decision.count == 15
        assert decision.upgraded == 15
        assert decision.prefetch_offsets.tolist() == [0, 1, 2, 3, 4] + list(range(6, 16))

    def test_upgrade_skips_resident_pages(self, pf):
        resident = np.zeros(512, dtype=bool)
        resident[0:8] = True
        decision = pf.compute(resident, np.array([9]))
        assert 0 not in decision.prefetch_offsets
        assert decision.count == 7  # 8..15 minus the fault at 9

    def test_two_faults_same_group_one_upgrade(self, pf):
        decision = pf.compute(np.zeros(512, dtype=bool), np.array([3, 7]))
        assert decision.count == 14


class TestStageTwoTreeGrowth:
    def test_no_growth_below_threshold(self, pf):
        """A lone 16-page group is 50% of its 32-parent: no growth."""
        decision = pf.compute(np.zeros(512, dtype=bool), np.array([0]))
        assert decision.max_region == 16

    def test_growth_when_sibling_dense(self, pf):
        """With the sibling big page resident, the 32-parent is 100%
        dense and growth continues while density holds."""
        resident = np.zeros(512, dtype=bool)
        resident[16:32] = True
        decision = pf.compute(resident, np.array([0]))
        assert decision.max_region >= 32

    def test_cascade_within_batch(self, pf):
        """Regions chosen for earlier faults count for later ones."""
        faults = np.array([0, 16, 32, 48])  # fills [0, 64) pairwise
        decision = pf.compute(np.zeros(512, dtype=bool), faults)
        assert decision.max_region == 64
        assert decision.count == 64 - 4

    def test_threshold_one_fetches_whole_block(self):
        pf = TreePrefetcher(threshold=1)
        decision = pf.compute(np.zeros(512, dtype=bool), np.array([137]))
        assert decision.max_region == 512
        assert decision.count == 511

    def test_threshold_hundred_never_grows(self):
        pf = TreePrefetcher(threshold=100)
        resident = np.zeros(512, dtype=bool)
        resident[16:512] = True  # nearly full block
        decision = pf.compute(resident, np.array([0]))
        assert decision.max_region == 16

    def test_strict_inequality_at_exact_threshold(self):
        """count*100 > threshold*size: exactly 50% with threshold 50
        does NOT grow (strict >), matching the driver's integer math."""
        pf = TreePrefetcher(threshold=50)
        resident = np.zeros(512, dtype=bool)
        decision = pf.compute(resident, np.array([0]))  # 16/32 = 50%
        assert decision.max_region == 16


class TestDecisionHygiene:
    def test_prefetch_never_includes_demand_pages(self, pf):
        faults = np.array([0, 100, 500])
        decision = pf.compute(np.zeros(512, dtype=bool), faults)
        assert not set(faults.tolist()) & set(decision.prefetch_offsets.tolist())

    def test_prefetch_never_includes_resident_pages(self, pf):
        resident = np.zeros(512, dtype=bool)
        resident[::3] = True
        decision = pf.compute(resident, np.array([1]))
        assert not resident[decision.prefetch_offsets].any()

    def test_empty_faults(self, pf):
        decision = pf.compute(np.zeros(512, dtype=bool), np.array([], dtype=np.int64))
        assert decision.count == 0

    def test_attribution_sums(self, pf):
        decision = pf.compute(np.zeros(512, dtype=bool), np.array([0, 16]))
        assert decision.upgraded + decision.tree_added == decision.count

    def test_region_sizes_recorded_per_fault(self, pf):
        decision = pf.compute(np.zeros(512, dtype=bool), np.array([0, 16]))
        assert len(decision.region_sizes) == 2


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ConfigurationError):
            TreePrefetcher(threshold=0)
        with pytest.raises(ConfigurationError):
            TreePrefetcher(threshold=101)

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            TreePrefetcher(pages_per_vablock=500)
        with pytest.raises(ConfigurationError):
            TreePrefetcher(pages_per_vablock=512, pages_per_big_page=15)

    def test_fault_offsets_bounds_checked(self, pf):
        with pytest.raises(ConfigurationError):
            pf.compute(np.zeros(512, dtype=bool), np.array([512]))

    def test_mask_shape_checked(self, pf):
        with pytest.raises(ConfigurationError):
            pf.compute(np.zeros(100, dtype=bool), np.array([0]))


class TestPaperFig6Example:
    def test_one_more_fault_fetches_full_region(self):
        """The Fig. 6 narrative on an 8-leaf tree: with the right five
        leaves present, the next fault's chain passes every level and
        the whole region is fetched."""
        pf = TreePrefetcher(threshold=51, pages_per_vablock=8, pages_per_big_page=1)
        resident = np.array([1, 1, 1, 1, 0, 1, 1, 0], dtype=bool)
        decision = pf.compute(resident, np.array([4]))
        assert decision.max_region == 8
        assert decision.prefetch_offsets.tolist() == [7]
