"""Unit tests for experiment-module helpers and row arithmetic."""

import pytest

from repro.experiments.common import default_small_gpu, gemm_wave_setup, sized
from repro.experiments.fig1 import Fig1Row
from repro.experiments.fig3 import BreakdownRow
from repro.experiments.fig9 import Fig9Row
from repro.experiments.fig10 import gemm_sizes_for
from repro.experiments.runner import ExperimentSetup
from repro.units import MiB


class TestCommonHelpers:
    def test_sized_is_fraction_of_gpu(self):
        setup = ExperimentSetup().with_gpu(memory_bytes=64 * MiB)
        assert sized(setup, 0.5) == 32 * MiB

    def test_default_small_gpu(self):
        assert default_small_gpu().gpu.memory_bytes == 64 * MiB

    def test_gemm_wave_setup_limits_occupancy(self):
        setup = gemm_wave_setup()
        assert setup.gpu.max_active_streams == 160
        assert setup.gpu.phase_width == 128


class TestGemmSizing:
    def test_sizes_hit_requested_ratios(self):
        setup = gemm_wave_setup(64)
        sizes = gemm_sizes_for(setup, ratios=(0.5, 1.0, 2.0), tile=128)
        for n in sizes:
            assert n % 128 == 0
        ratios = [3 * n * n * 4 / (64 * MiB) for n in sizes]
        assert ratios[0] < 1.0 < ratios[-1]

    def test_sizes_deduplicated_and_sorted(self):
        setup = gemm_wave_setup(64)
        sizes = gemm_sizes_for(setup, ratios=(1.0, 1.0, 1.01), tile=128)
        assert sizes == sorted(set(sizes))


class TestRowArithmetic:
    def test_fig1_slowdowns(self):
        row = Fig1Row(
            pattern="regular",
            fraction=0.5,
            data_bytes=1000,
            explicit_us=10.0,
            uvm_us=130.0,
            uvm_prefetch_us=26.0,
        )
        assert row.uvm_slowdown == 13.0
        assert row.prefetch_slowdown == 2.6
        assert not row.oversubscribed

    def test_fig3_shares(self):
        row = BreakdownRow(
            pattern="random",
            data_bytes=1000,
            preprocess_us=10.0,
            service_us=70.0,
            replay_us=10.0,
            other_us=10.0,
            total_us=100.0,
        )
        assert row.driver_us == 90.0
        assert row.share("service") == 0.7

    def test_fig9_amplification(self):
        row = Fig9Row(
            pattern="random",
            ratio=1.5,
            data_bytes=100,
            map_us=1.0,
            evict_us=1.0,
            other_driver_us=1.0,
            total_us=3.0,
            evictions=5,
            transferred_bytes=800,
        )
        assert row.amplification == 8.0
