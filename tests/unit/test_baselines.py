"""Unit tests for the explicit-transfer baseline."""

import pytest

from repro.baselines.explicit import ExplicitTransferBaseline, explicit_transfer_time_ns
from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel
from repro.units import MiB


class TestExplicitTransfer:
    def test_time_is_setup_plus_wire(self):
        cost = CostModel()
        t = explicit_transfer_time_ns(cost, 12 * MiB)
        wire = 12 * MiB * 1e9 / cost.memcpy_bytes_per_s
        assert t == pytest.approx(cost.memcpy_setup_ns + wire, rel=1e-6)

    def test_per_allocation_launches(self):
        cost = CostModel()
        one = explicit_transfer_time_ns(cost, 1 * MiB, n_allocations=1)
        three = explicit_transfer_time_ns(cost, 1 * MiB, n_allocations=3)
        assert three - one == 2 * cost.memcpy_setup_ns

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            explicit_transfer_time_ns(CostModel(), -1)
        with pytest.raises(ConfigurationError):
            explicit_transfer_time_ns(CostModel(), 1, n_allocations=0)

    def test_effective_bandwidth_approaches_link_rate(self):
        baseline = ExplicitTransferBaseline(CostModel())
        bw = baseline.effective_bandwidth(1 << 30)
        assert bw == pytest.approx(CostModel().memcpy_bytes_per_s, rel=0.01)

    def test_effective_bandwidth_penalized_at_small_sizes(self):
        baseline = ExplicitTransferBaseline(CostModel())
        assert baseline.effective_bandwidth(4096) < 0.1 * CostModel().memcpy_bytes_per_s

    def test_time_us(self):
        baseline = ExplicitTransferBaseline(CostModel())
        assert baseline.time_us(0) == pytest.approx(9.0)
