"""Unit tests for the GPU device (fault-producing phases)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.device import GpuDevice, GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.sim.clock import SimClock
from repro.sim.rng import SimRng
from repro.units import MiB


def make_device(streams, **cfg):
    config = GpuDeviceConfig(memory_bytes=16 * MiB, **cfg)
    return GpuDevice(config, streams, rng=SimRng(5), total_vablocks=8)


class TestConfig:
    def test_defaults_valid(self):
        GpuDeviceConfig()

    def test_invalid_memory(self):
        with pytest.raises(ConfigurationError):
            GpuDeviceConfig(memory_bytes=0)

    def test_invalid_phase_width(self):
        with pytest.raises(ConfigurationError):
            GpuDeviceConfig(phase_width=0)

    def test_sms_vs_gpcs(self):
        with pytest.raises(ConfigurationError):
            GpuDeviceConfig(n_sms=2, n_gpcs=4)


class TestPhases:
    def test_phase_generates_faults(self):
        streams = [WarpStream(i, np.array([i])) for i in range(10)]
        device = make_device(streams)
        clock = SimClock()
        result = device.run_phase(np.zeros(100, dtype=bool), clock)
        assert result.faults_enqueued == 10
        assert len(device.fault_buffer) == 10

    def test_phase_width_bounds_advancement(self):
        streams = [WarpStream(i, np.array([i])) for i in range(100)]
        device = make_device(streams, phase_width=10)
        result = device.run_phase(np.zeros(200, dtype=bool), SimClock())
        assert result.faults_enqueued == 10

    def test_max_streams_override(self):
        streams = [WarpStream(i, np.array([i])) for i in range(100)]
        device = make_device(streams, phase_width=50)
        result = device.run_phase(np.zeros(200, dtype=bool), SimClock(), max_streams=3)
        assert result.faults_enqueued == 3

    def test_resident_pages_complete_streams(self):
        streams = [WarpStream(i, np.array([i])) for i in range(5)]
        device = make_device(streams)
        resident = np.ones(10, dtype=bool)
        result = device.run_phase(resident, SimClock())
        assert result.streams_completed == 5
        assert device.kernel_finished()

    def test_same_gpc_duplicates_coalesce(self):
        # many streams touching the same page; some share GPCs
        streams = [WarpStream(i, np.array([7])) for i in range(12)]
        device = make_device(streams, n_sms=12, n_gpcs=6)
        result = device.run_phase(np.zeros(10, dtype=bool), SimClock())
        assert result.faults_enqueued == 6  # one per GPC
        assert result.faults_coalesced == 6

    def test_buffer_overflow_drops(self):
        streams = [WarpStream(i, np.array([i])) for i in range(10)]
        device = make_device(streams, fault_buffer_capacity=4, n_sms=80)
        result = device.run_phase(np.zeros(100, dtype=bool), SimClock())
        assert result.faults_enqueued == 4
        assert result.faults_dropped == 6

    def test_flops_accumulate(self):
        streams = [WarpStream(0, np.array([0, 1]), flops_per_access=10.0)]
        device = make_device(streams)
        resident = np.ones(4, dtype=bool)
        result = device.run_phase(resident, SimClock())
        assert result.flops_retired == 20.0


class TestReplayDelivery:
    def test_replay_wakes_and_clears_tlb(self):
        streams = [WarpStream(i, np.array([i])) for i in range(4)]
        device = make_device(streams)
        device.run_phase(np.zeros(10, dtype=bool), SimClock())
        assert device.has_stalled_streams()
        woken = device.deliver_replay()
        assert woken == 4
        assert not device.has_stalled_streams()
        assert device.utlb.pending_total() == 0


class TestAccessCounters:
    def test_counters_track_vablock_accesses(self):
        streams = [WarpStream(0, np.arange(600, dtype=np.int64))]
        config = GpuDeviceConfig(memory_bytes=16 * MiB, track_access_counters=True)
        device = GpuDevice(config, streams, rng=SimRng(5), total_vablocks=8)
        device.set_vablock_geometry(512)
        resident = np.ones(600, dtype=bool)
        device.run_phase(resident, SimClock())
        assert device.access_counters[0] == 512
        assert device.access_counters[1] == 88

    def test_counters_disabled_by_default(self):
        device = make_device([WarpStream(0, np.array([0]))])
        assert device.access_counters is None
