"""Unit tests for the DMA engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.dma import DmaEngine, contiguous_runs
from repro.sim.costmodel import CostModel
from repro.units import PAGE_SIZE


@pytest.fixture
def dma():
    return DmaEngine(CostModel(), PAGE_SIZE)


class TestContiguousRuns:
    def test_empty(self):
        assert contiguous_runs(np.array([], dtype=np.int64)) == 0

    def test_single_run(self):
        assert contiguous_runs(np.array([3, 4, 5])) == 1

    def test_multiple_runs(self):
        assert contiguous_runs(np.array([1, 2, 10, 11, 20])) == 3

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            contiguous_runs(np.array([5, 3]))


class TestTransfers:
    def test_h2d_accounts_bytes(self, dma):
        dma.h2d_pages(np.arange(10))
        assert dma.stats.h2d_bytes == 10 * PAGE_SIZE
        assert dma.stats.h2d_transfers == 1

    def test_staging_chunks_split_large_copies(self, dma):
        # 1024 pages = 4 MiB -> two 2 MiB staging chunks
        dma.h2d_pages(np.arange(1024))
        assert dma.stats.h2d_transfers == 2

    def test_scattered_pages_share_one_staging_transfer(self, dma):
        """The driver stages scattered sources: no per-run setup blowup
        within a single service (Section III-D coalescing)."""
        cost_scattered = dma.h2d_pages(np.arange(0, 512, 2))
        stats_transfers = dma.stats.h2d_transfers
        assert stats_transfers == 1
        cost_dense = dma.h2d_pages(np.arange(256))
        assert cost_scattered == cost_dense  # same bytes, same chunks

    def test_d2h_accounts_bytes(self, dma):
        dma.d2h_pages(np.array([5, 6]))
        assert dma.stats.d2h_bytes == 2 * PAGE_SIZE
        assert dma.stats.total_bytes == 2 * PAGE_SIZE

    def test_empty_transfer_is_free(self, dma):
        assert dma.h2d_pages(np.empty(0, dtype=np.int64)) == 0
        assert dma.stats.h2d_transfers == 0

    def test_cost_includes_setup_and_wire(self, dma):
        cost = CostModel()
        t = dma.h2d_pages(np.arange(4))
        assert t == cost.dma_setup_ns + cost.transfer_ns(4 * PAGE_SIZE)

    def test_d2h_page_count_helper(self, dma):
        t = dma.d2h_page_count(8, runs=2)
        assert dma.stats.d2h_bytes == 8 * PAGE_SIZE
        assert dma.stats.d2h_transfers == 2
        assert t > 0
        assert dma.d2h_page_count(0) == 0
