"""Unit tests for the block scheduler."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.scheduler import BlockScheduler
from repro.gpu.warp import StreamState, WarpStream
from repro.sim.rng import SimRng


def make_streams(n, pages_each=1):
    return [WarpStream(i, np.full(pages_each, i, dtype=np.int64)) for i in range(n)]


@pytest.fixture
def rng():
    return SimRng(42)


class TestDispatch:
    def test_occupancy_limit(self, rng):
        sched = BlockScheduler(make_streams(100), rng, max_active=10)
        assert sched.refill() == 10
        assert len(sched.active()) == 10

    def test_backfill_after_completion(self, rng):
        streams = make_streams(20)
        sched = BlockScheduler(streams, rng, max_active=10)
        sched.refill()
        for s in sched.active()[:3]:
            s.state = StreamState.DONE
        dispatched = sched.refill()
        assert dispatched == 3
        assert len(sched.active()) == 10

    def test_dispatch_prefers_low_indices(self, rng):
        """Low-numbered blocks dispatch (mostly) first (Section IV-B)."""
        streams = make_streams(1000)
        sched = BlockScheduler(streams, rng, max_active=100, jitter=0.05)
        sched.refill()
        ids = [s.stream_id for s in sched.active()]
        assert np.mean(ids) < 200  # far below the 500 a shuffle would give

    def test_sm_assignment_round_robin(self, rng):
        sched = BlockScheduler(make_streams(8), rng, max_active=8, n_sms=4)
        sched.refill()
        sms = sorted(s.sm_id for s in sched.active())
        assert sms == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_invalid_params(self, rng):
        with pytest.raises(SimulationError):
            BlockScheduler([], rng, max_active=0)
        with pytest.raises(SimulationError):
            BlockScheduler([], rng, n_sms=0)


class TestLifecycle:
    def test_all_done_empty(self, rng):
        assert BlockScheduler([], rng).all_done()

    def test_all_done_progression(self, rng):
        streams = make_streams(3)
        sched = BlockScheduler(streams, rng, max_active=2)
        sched.refill()
        assert not sched.all_done()
        for s in streams:
            s.state = StreamState.DONE
        sched.refill()
        assert sched.all_done()

    def test_wake_all_stalled(self, rng):
        streams = make_streams(4)
        sched = BlockScheduler(streams, rng, max_active=4)
        sched.refill()
        resident = np.zeros(10, dtype=bool)
        for s in sched.runnable():
            s.advance(resident)
        assert len(sched.stalled()) == 4
        assert sched.wake_all_stalled() == 4
        assert len(sched.runnable()) == 4

    def test_progress(self, rng):
        streams = make_streams(5)
        sched = BlockScheduler(streams, rng, max_active=5)
        sched.refill()
        streams[0].state = StreamState.DONE
        assert sched.progress() == (1, 5)
