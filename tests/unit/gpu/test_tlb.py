"""Unit tests for uTLB fault coalescing."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.tlb import UTlbArray


@pytest.fixture
def tlbs():
    return UTlbArray(n_gpcs=2, sms_per_gpc=4)


class TestCoalescing:
    def test_first_miss_raises(self, tlbs):
        assert tlbs.should_raise(sm_id=0, page=10)
        assert tlbs.raised == 1

    def test_same_gpc_same_page_coalesced(self, tlbs):
        tlbs.should_raise(0, 10)
        assert not tlbs.should_raise(1, 10)  # SM 1 shares GPC 0
        assert tlbs.coalesced == 1

    def test_different_gpc_duplicates(self, tlbs):
        """Cross-GPC misses produce duplicate fault entries - the driver
        cannot tell (fault source erasure)."""
        assert tlbs.should_raise(0, 10)
        assert tlbs.should_raise(4, 10)  # SM 4 is on GPC 1
        assert tlbs.raised == 2

    def test_different_pages_not_coalesced(self, tlbs):
        assert tlbs.should_raise(0, 10)
        assert tlbs.should_raise(0, 11)

    def test_gpc_of_sm(self, tlbs):
        assert tlbs.gpc_of_sm(0) == 0
        assert tlbs.gpc_of_sm(3) == 0
        assert tlbs.gpc_of_sm(4) == 1

    def test_negative_sm_rejected(self, tlbs):
        with pytest.raises(ConfigurationError):
            tlbs.gpc_of_sm(-1)


class TestReplayInteraction:
    def test_replay_clears_pending(self, tlbs):
        tlbs.should_raise(0, 10)
        tlbs.on_replay()
        assert tlbs.pending_total() == 0
        # unsatisfied access re-walks and re-raises: the duplicate path
        assert tlbs.should_raise(0, 10)

    def test_forget_allows_re_raise_without_replay(self, tlbs):
        """Dropped buffer pushes must not leave a poisoned pending set."""
        tlbs.should_raise(0, 10)
        tlbs.forget(0, 10)
        assert tlbs.should_raise(0, 10)

    def test_forget_adjusts_raised_count(self, tlbs):
        tlbs.should_raise(0, 10)
        tlbs.forget(0, 10)
        tlbs.should_raise(0, 10)
        assert tlbs.raised == 1

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            UTlbArray(n_gpcs=0)
