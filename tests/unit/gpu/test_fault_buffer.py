"""Unit tests for the hardware fault buffer."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.fault_buffer import FaultBuffer, FaultEntry


def entry(page: int, t: int = 0, stream: int = 0) -> FaultEntry:
    return FaultEntry(
        page=page, is_write=False, timestamp_ns=t, gpc_id=0, utlb_id=0, stream_id=stream
    )


class TestCapacity:
    def test_push_until_full(self):
        buf = FaultBuffer(capacity=2)
        assert buf.try_push(entry(1))
        assert buf.try_push(entry(2))
        assert not buf.try_push(entry(3))
        assert buf.total_dropped == 1
        assert len(buf) == 2

    def test_high_watermark(self):
        buf = FaultBuffer(capacity=4)
        for p in range(3):
            buf.try_push(entry(p))
        buf.pop_ready(10**9)
        assert buf.high_watermark == 3

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultBuffer(capacity=0)


class TestReadySemantics:
    def test_fifo_order(self):
        buf = FaultBuffer(capacity=8, ready_delay_ns=0)
        for p in (5, 3, 9):
            buf.try_push(entry(p))
        pages = [buf.pop_ready(0)[0].page for _ in range(3)]
        assert pages == [5, 3, 9]

    def test_entry_not_ready_requires_polls(self):
        buf = FaultBuffer(capacity=8, ready_delay_ns=1000)
        buf.try_push(entry(1, t=100))
        popped, polls = buf.pop_ready(now_ns=100)  # ready at 1100
        assert popped.page == 1
        assert polls >= 1

    def test_ready_entry_needs_no_polls(self):
        buf = FaultBuffer(capacity=8, ready_delay_ns=1000)
        buf.try_push(entry(1, t=0))
        _, polls = buf.pop_ready(now_ns=5000)
        assert polls == 0

    def test_pop_empty(self):
        buf = FaultBuffer(capacity=8)
        assert buf.pop_ready(0) == (None, 0)


class TestFlush:
    def test_flush_empties_and_counts(self):
        buf = FaultBuffer(capacity=8)
        for p in range(5):
            buf.try_push(entry(p))
        assert buf.flush() == 5
        assert len(buf) == 0
        assert buf.total_flushed == 5

    def test_push_after_flush(self):
        buf = FaultBuffer(capacity=2)
        buf.try_push(entry(1))
        buf.try_push(entry(2))
        buf.flush()
        assert buf.try_push(entry(3))

    def test_snapshot_pages(self):
        buf = FaultBuffer(capacity=8)
        buf.try_push(entry(7))
        buf.try_push(entry(7))  # duplicates are stored faithfully
        assert buf.snapshot_pages() == [7, 7]


class TestEntryShape:
    def test_entries_carry_no_thread_id(self):
        """Fault-source erasure: the entry has GPC/uTLB but the stock
        fields expose no thread identity (Section IV-A)."""
        e = entry(1)
        public = {f for f in e.__dataclass_fields__}
        assert "thread_id" not in public
        assert "pc" not in public
        assert {"gpc_id", "utlb_id"} <= public
