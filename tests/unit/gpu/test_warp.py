"""Unit tests for warp streams."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.warp import StreamState, WarpStream


@pytest.fixture
def resident():
    return np.zeros(100, dtype=bool)


class TestAdvance:
    def test_stalls_on_first_miss(self, resident):
        resident[:5] = True
        stream = WarpStream(0, np.arange(10))
        missing = stream.advance(resident)
        assert missing == 5
        assert stream.state is StreamState.STALLED
        assert stream.stalled_on == 5
        assert stream.accesses_retired == 5

    def test_completes_when_all_resident(self, resident):
        resident[:] = True
        stream = WarpStream(0, np.arange(10))
        assert stream.advance(resident) is None
        assert stream.state is StreamState.DONE
        assert stream.remaining == 0

    def test_wake_then_refault_same_page(self, resident):
        stream = WarpStream(0, np.array([3]))
        assert stream.advance(resident) == 3
        stream.wake()
        assert stream.state is StreamState.RUNNABLE
        assert stream.advance(resident) == 3  # duplicate fault
        assert stream.faults_raised == 2

    def test_wake_then_proceed_when_serviced(self, resident):
        stream = WarpStream(0, np.array([3, 7]))
        stream.advance(resident)
        resident[3] = True
        stream.wake()
        assert stream.advance(resident) == 7

    def test_advance_while_stalled_rejected(self, resident):
        stream = WarpStream(0, np.array([3]))
        stream.advance(resident)
        with pytest.raises(SimulationError):
            stream.advance(resident)

    def test_chunked_scan_matches_full_scan(self, resident):
        resident[:50] = True
        resident[60:] = True
        pages = np.arange(100)
        small = WarpStream(0, pages)
        assert small.advance(resident, scan_chunk=7) == 50

    def test_reuse_pattern_retires_fast(self, resident):
        """Reuse-heavy streams (GEMM-like) advance over resident pages."""
        resident[:4] = True
        pages = np.array([0, 1, 2, 3, 0, 1, 2, 3, 4])
        stream = WarpStream(0, pages)
        assert stream.advance(resident) == 4
        assert stream.accesses_retired == 8


class TestWrites:
    def test_next_is_write(self, resident):
        stream = WarpStream(0, np.array([0, 1]), writes=np.array([True, False]))
        stream.advance(resident)
        assert stream.next_is_write() is True

    def test_no_writes_default(self, resident):
        stream = WarpStream(0, np.array([0]))
        stream.advance(resident)
        assert stream.next_is_write() is False

    def test_writes_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            WarpStream(0, np.array([0, 1]), writes=np.array([True]))


class TestShape:
    def test_non_1d_rejected(self):
        with pytest.raises(SimulationError):
            WarpStream(0, np.zeros((2, 2), dtype=np.int64))

    def test_flops_per_access(self):
        stream = WarpStream(0, np.arange(4), flops_per_access=2.5)
        assert stream.flops_per_access == 2.5

    def test_len_and_next_page(self):
        stream = WarpStream(0, np.array([9, 8]))
        assert len(stream) == 2
        assert stream.next_page() == 9
