"""Unit tests for multi-kernel device loading."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.device import GpuDevice, GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.sim.clock import SimClock
from repro.sim.rng import SimRng
from repro.units import MiB


def make_device(streams):
    config = GpuDeviceConfig(memory_bytes=16 * MiB, track_access_counters=True)
    device = GpuDevice(config, streams, rng=SimRng(5), total_vablocks=8)
    device.set_vablock_geometry(512)
    return device


class TestLoadKernel:
    def test_second_kernel_runs_after_first_completes(self):
        device = make_device([WarpStream(0, np.array([0]))])
        resident = np.ones(100, dtype=bool)
        device.run_phase(resident, SimClock())
        assert device.kernel_finished()
        device.load_kernel([WarpStream(1, np.array([5, 6]))])
        assert not device.kernel_finished()
        result = device.run_phase(resident, SimClock())
        assert result.streams_completed == 1

    def test_loading_over_running_kernel_rejected(self):
        device = make_device([WarpStream(0, np.array([0]))])
        device.run_phase(np.zeros(100, dtype=bool), SimClock())  # stalls
        with pytest.raises(ConfigurationError):
            device.load_kernel([WarpStream(1, np.array([1]))])

    def test_access_counters_persist_across_kernels(self):
        device = make_device([WarpStream(0, np.arange(4, dtype=np.int64))])
        resident = np.ones(100, dtype=bool)
        device.run_phase(resident, SimClock())
        device.load_kernel([WarpStream(1, np.arange(4, dtype=np.int64))])
        device.run_phase(resident, SimClock())
        assert device.access_counters[0] == 8  # both kernels counted

    def test_fault_buffer_persists(self):
        device = make_device([WarpStream(0, np.array([0]))])
        resident = np.ones(100, dtype=bool)
        device.run_phase(resident, SimClock())
        enqueued_before = device.fault_buffer.total_enqueued
        device.load_kernel([WarpStream(1, np.array([50]))])
        device.run_phase(np.zeros(100, dtype=bool), SimClock())
        assert device.fault_buffer.total_enqueued == enqueued_before + 1

    def test_kernels_get_distinct_scheduler_randomness(self):
        streams_a = [WarpStream(i, np.array([i])) for i in range(64)]
        device = make_device(streams_a)
        order_a = [s.stream_id for s in device.scheduler.streams]
        resident = np.ones(100, dtype=bool)
        while not device.kernel_finished():
            device.run_phase(resident, SimClock())
        streams_b = [WarpStream(i, np.array([i])) for i in range(64)]
        device.load_kernel(streams_b)
        dispatch_a = device.scheduler._dispatch_order
        # a fresh jitter stream per kernel: not forced to repeat kernel 1
        assert len(dispatch_a) == 64
