"""Unit tests for the fault plan model and its deterministic decisions."""

import json

import pytest

from repro.chaos import (
    ALL_POINTS,
    ENV_VAR,
    FAMILY_MODEL,
    FAMILY_PROCESS,
    FAMILY_STORAGE,
    MODEL_DMA_FAIL,
    MODEL_POINTS,
    PROCESS_KILL,
    STORAGE_TORN_JSON,
    FaultPlan,
    FaultSpec,
    family_of,
    plan_from_env,
)
from repro.errors import ConfigurationError

SCOPE = "a" * 64


class TestFaultSpec:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(point="model.no_such_point")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(point=MODEL_DMA_FAIL, probability=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(point=MODEL_DMA_FAIL, probability=1.5)

    def test_family_derivation(self):
        assert FaultSpec(point=MODEL_DMA_FAIL).family == FAMILY_MODEL
        assert FaultSpec(point=PROCESS_KILL).family == FAMILY_PROCESS
        assert FaultSpec(point=STORAGE_TORN_JSON).family == FAMILY_STORAGE
        assert all(
            family_of(p) in ("model", "process", "storage", "network")
            for p in ALL_POINTS
        )

    def test_model_points_cover_model_family(self):
        assert set(MODEL_POINTS) == {
            p for p in ALL_POINTS if family_of(p) == FAMILY_MODEL
        }


class TestFaultPlan:
    def test_duplicate_points_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                faults=(
                    FaultSpec(point=MODEL_DMA_FAIL),
                    FaultSpec(point=MODEL_DMA_FAIL),
                )
            )

    def test_should_fire_respects_attempts_bound(self):
        plan = FaultPlan(faults=(FaultSpec(point=MODEL_DMA_FAIL, attempts=2),))
        assert plan.should_fire(MODEL_DMA_FAIL, SCOPE, trial=0) is not None
        assert plan.should_fire(MODEL_DMA_FAIL, SCOPE, trial=1) is not None
        # attempt attempts+1 is guaranteed clean - the retry convergence
        # property the whole chaos design rests on.
        assert plan.should_fire(MODEL_DMA_FAIL, SCOPE, trial=2) is None

    def test_should_fire_is_deterministic_across_instances(self):
        spec = FaultSpec(point=MODEL_DMA_FAIL, probability=0.5, attempts=1)
        a = FaultPlan(seed=99, faults=(spec,))
        b = FaultPlan(seed=99, faults=(spec,))
        for scope in (SCOPE, "b" * 64, "c" * 64):
            assert (a.should_fire(MODEL_DMA_FAIL, scope) is None) == (
                b.should_fire(MODEL_DMA_FAIL, scope) is None
            )

    def test_probability_draw_depends_on_seed(self):
        spec = FaultSpec(point=MODEL_DMA_FAIL, probability=0.5)
        verdicts = {
            seed: FaultPlan(seed=seed, faults=(spec,)).should_fire(
                MODEL_DMA_FAIL, SCOPE
            )
            is not None
            for seed in range(32)
        }
        # with p=0.5 over 32 seeds both outcomes must appear
        assert set(verdicts.values()) == {True, False}

    def test_unlisted_point_never_fires(self):
        plan = FaultPlan(faults=(FaultSpec(point=MODEL_DMA_FAIL),))
        assert plan.should_fire(PROCESS_KILL, SCOPE) is None

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec(
                    point=PROCESS_KILL,
                    probability=0.25,
                    attempts=3,
                    args={"at": "checkpoint", "after_saves": 2},
                ),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"seed": 1, "surprise": True})
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"faults": [{"point": MODEL_DMA_FAIL, "oops": 1}]})

    def test_family_queries(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(point=MODEL_DMA_FAIL),
                FaultSpec(point=STORAGE_TORN_JSON),
            )
        )
        assert plan.has_family(FAMILY_MODEL)
        assert plan.has_family(FAMILY_STORAGE)
        assert not plan.has_family(FAMILY_PROCESS)
        assert [s.point for s in plan.family_specs(FAMILY_MODEL)] == [MODEL_DMA_FAIL]


class TestEnvActivation:
    def test_unset_or_disabled_is_none(self, monkeypatch):
        for value in (None, "", "0", "off", "none", "disabled"):
            if value is None:
                monkeypatch.delenv(ENV_VAR, raising=False)
            else:
                monkeypatch.setenv(ENV_VAR, value)
            assert plan_from_env() is None

    def test_inline_json(self, monkeypatch):
        plan = FaultPlan(seed=5, faults=(FaultSpec(point=MODEL_DMA_FAIL),))
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert plan_from_env() == plan

    def test_plan_file(self, monkeypatch, tmp_path):
        plan = FaultPlan(seed=5, faults=(FaultSpec(point=STORAGE_TORN_JSON),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(ENV_VAR, str(path))
        assert plan_from_env() == plan

    def test_missing_plan_file_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "nope.json"))
        with pytest.raises(ConfigurationError):
            plan_from_env()

    def test_invalid_json_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        with pytest.raises(ConfigurationError):
            plan_from_env()
