"""Unit tests for the network-fault family: partitions and torn responses.

Everything runs against a :class:`NetworkInjector` with an injected
fake clock - no sockets, no threads - which is exactly how the design
doc says the family must be testable: every decision is a pure function
of (plan, local endpoint, clock, journal-append count).
"""

import pytest

from repro.chaos import (
    CALLER_HEADER,
    NETWORK_CONNECT_REFUSE,
    NETWORK_DELAY,
    NETWORK_DISCONNECT,
    NETWORK_PARTITION,
    NETWORK_TRUNCATE,
    ChaosPartitionError,
    FaultPlan,
    FaultSpec,
    NetworkInjector,
    PartitionRule,
    endpoint_of_url,
    install_network_chaos,
    local_endpoint,
    network_injector,
    reset_network_chaos,
)
from repro.errors import ConfigurationError


class _FakeClock:
    """Monotonic stand-in the tests advance explicitly."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _plan(*faults: FaultSpec, seed: int = 0xC405) -> FaultPlan:
    return FaultPlan(seed=seed, faults=tuple(faults))


def _partition_plan(*rules: dict) -> FaultPlan:
    return _plan(
        FaultSpec(point=NETWORK_PARTITION, args={"rules": list(rules)})
    )


class TestEndpointOfUrl:
    def test_host_port(self):
        assert endpoint_of_url("http://127.0.0.1:8000") == "127.0.0.1:8000"
        assert endpoint_of_url("http://127.0.0.1:8000/fleet/view") == "127.0.0.1:8000"

    def test_lowercases_host(self):
        assert endpoint_of_url("http://LocalHost:9/") == "localhost:9"

    def test_bare_host_no_port(self):
        assert endpoint_of_url("example.com") == "example.com"


class TestPartitionRule:
    def test_requires_src_and_dst(self):
        with pytest.raises(ConfigurationError):
            PartitionRule(src="", dst="*")
        with pytest.raises(ConfigurationError):
            PartitionRule(src="*", dst="")

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            PartitionRule(src="a", dst="b", after_s=-1.0)
        with pytest.raises(ConfigurationError):
            PartitionRule(src="a", dst="b", after_appends=0)
        with pytest.raises(ConfigurationError):
            PartitionRule(src="a", dst="b", heal_after_s=0.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            PartitionRule.from_dict({"src": "a", "dst": "b", "oops": 1})

    def test_from_dict_round_trip(self):
        rule = PartitionRule.from_dict(
            {"src": "gw0", "dst": "*", "after_appends": 3, "heal_after_s": 2.0}
        )
        assert rule == PartitionRule(
            src="gw0", dst="*", after_appends=3, heal_after_s=2.0
        )

    def test_bad_rules_array_rejected(self):
        plan = _plan(
            FaultSpec(point=NETWORK_PARTITION, args={"rules": "not-a-list"})
        )
        with pytest.raises(ConfigurationError):
            NetworkInjector(plan, "gw0", clock=_FakeClock())


class TestTimeArmedPartition:
    def test_arms_after_s_and_heals(self):
        clock = _FakeClock()
        plan = _partition_plan(
            {"src": "gw0", "dst": "*", "after_s": 5.0, "heal_after_s": 3.0}
        )
        inj = NetworkInjector(plan, "gw0", clock=clock)
        # not armed yet
        inj.check_connect("http://127.0.0.1:9")
        clock.advance(5.0)
        with pytest.raises(ChaosPartitionError):
            inj.check_connect("http://127.0.0.1:9")
        # heals heal_after_s after arming
        clock.advance(3.0)
        inj.check_connect("http://127.0.0.1:9")
        assert inj.snapshot_counters()["chaos.network.partition_refusals"] == 1

    def test_src_must_match_local(self):
        clock = _FakeClock()
        plan = _partition_plan({"src": "gw1", "dst": "*", "after_s": 0.0})
        inj = NetworkInjector(plan, "gw0", clock=clock)
        inj.check_connect("http://127.0.0.1:9")  # we are gw0, rule cuts gw1

    def test_dst_matches_host_port(self):
        clock = _FakeClock()
        plan = _partition_plan(
            {"src": "gw0", "dst": "127.0.0.1:9", "after_s": 0.0}
        )
        inj = NetworkInjector(plan, "gw0", clock=clock)
        with pytest.raises(ChaosPartitionError):
            inj.check_connect("http://127.0.0.1:9")
        inj.check_connect("http://127.0.0.1:10")  # different port untouched


class TestAppendArmedPartition:
    def test_arms_on_nth_append(self):
        clock = _FakeClock()
        plan = _partition_plan(
            {"src": "gw0", "dst": "*", "after_appends": 3, "heal_after_s": 4.0}
        )
        inj = NetworkInjector(plan, "gw0", clock=clock)
        inj.note_append(2)
        inj.check_connect("http://127.0.0.1:9")  # 2 < 3: not armed
        inj.note_append(3)
        assert inj.snapshot_counters()["chaos.network.partitions_armed"] == 1
        with pytest.raises(ChaosPartitionError):
            inj.check_connect("http://127.0.0.1:9")
        # heal is measured from the arming instant, not from install
        clock.advance(4.0)
        inj.check_connect("http://127.0.0.1:9")

    def test_append_count_is_monotonic(self):
        clock = _FakeClock()
        plan = _partition_plan({"src": "gw0", "dst": "*", "after_appends": 5})
        inj = NetworkInjector(plan, "gw0", clock=clock)
        inj.note_append(5)
        inj.note_append(1)  # a stale lower count must not disarm
        with pytest.raises(ChaosPartitionError):
            inj.check_connect("http://127.0.0.1:9")


class TestInboundDrop:
    def test_drops_named_caller_only(self):
        clock = _FakeClock()
        plan = _partition_plan({"src": "gw1", "dst": "gw0", "after_s": 0.0})
        inj = NetworkInjector(plan, "gw0", clock=clock)
        assert inj.drop_inbound("gw1") is True
        assert inj.drop_inbound("gw2") is False
        assert inj.drop_inbound(None) is False  # anonymous caller unmatched
        assert inj.snapshot_counters()["chaos.network.inbound_drops"] == 1

    def test_wildcard_src_drops_anonymous_callers(self):
        clock = _FakeClock()
        plan = _partition_plan({"src": "*", "dst": "gw0", "after_s": 0.0})
        inj = NetworkInjector(plan, "gw0", clock=clock)
        assert inj.drop_inbound(None) is True
        assert inj.drop_inbound("anyone") is True


class TestConnectRefuse:
    def test_budgeted_refusal(self):
        clock = _FakeClock()
        plan = _plan(FaultSpec(point=NETWORK_CONNECT_REFUSE, max_fires=1))
        inj = NetworkInjector(plan, "gw0", clock=clock)
        with pytest.raises(ChaosPartitionError):
            inj.check_connect("http://127.0.0.1:9")
        inj.check_connect("http://127.0.0.1:9")  # budget spent
        assert inj.snapshot_counters()["chaos.network.connects_refused"] == 1

    def test_chaos_partition_error_is_connection_refused(self):
        # the client's unreachable-endpoint handling must engage unchanged
        assert issubclass(ChaosPartitionError, ConnectionRefusedError)


class TestResponseFaults:
    def test_first_match_wins_then_budgets_drain(self):
        clock = _FakeClock()
        plan = _plan(
            FaultSpec(point=NETWORK_DELAY, args={"delay_s": 0.05}),
            FaultSpec(point=NETWORK_DISCONNECT, args={"after_bytes": 4}),
            FaultSpec(point=NETWORK_TRUNCATE, args={"drop_bytes": 2}),
        )
        inj = NetworkInjector(plan, "gw0", clock=clock)
        assert inj.response_fault("gw1") == {"kind": "delay", "delay_s": 0.05}
        assert inj.response_fault("gw1") == {"kind": "disconnect", "after_bytes": 4}
        assert inj.response_fault("gw1") == {"kind": "truncate", "drop_bytes": 2}
        assert inj.response_fault("gw1") is None
        counters = inj.snapshot_counters()
        assert counters["chaos.network.delays"] == 1
        assert counters["chaos.network.disconnects"] == 1
        assert counters["chaos.network.truncates"] == 1

    def test_truncate_defaults_drop_bytes(self):
        inj = NetworkInjector(
            _plan(FaultSpec(point=NETWORK_TRUNCATE)), "gw0", clock=_FakeClock()
        )
        assert inj.response_fault(None) == {"kind": "truncate", "drop_bytes": 1}

    def test_attempts_bound_cleans_later_trials(self):
        # attempts=1 perturbs only the first request per caller; the
        # retry is guaranteed clean even with budget left.
        plan = _plan(
            FaultSpec(point=NETWORK_DELAY, max_fires=5, attempts=1)
        )
        inj = NetworkInjector(plan, "gw0", clock=_FakeClock())
        assert inj.response_fault("gw1") is not None
        assert inj.response_fault("gw1") is None
        # a different caller gets its own trial sequence
        assert inj.response_fault("gw2") is not None


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = _plan(
            FaultSpec(
                point=NETWORK_CONNECT_REFUSE,
                probability=0.5,
                max_fires=64,
                attempts=1,
            ),
            seed=1234,
        )
        peers = [f"http://127.0.0.1:{8000 + i}" for i in range(16)]

        def verdicts():
            inj = NetworkInjector(plan, "gw0", clock=_FakeClock())
            out = []
            for url in peers:
                try:
                    inj.check_connect(url)
                    out.append(False)
                except ChaosPartitionError:
                    out.append(True)
            return out

        first = verdicts()
        assert first == verdicts()
        # p=0.5 over 16 peers: both outcomes appear
        assert set(first) == {True, False}


class TestInstallSentinel:
    @pytest.fixture(autouse=True)
    def _clean(self):
        reset_network_chaos()
        yield
        reset_network_chaos()

    def test_no_network_family_keeps_none_sentinel(self):
        from repro.chaos import MODEL_DMA_FAIL

        plan = _plan(FaultSpec(point=MODEL_DMA_FAIL))
        assert install_network_chaos(local="gw0", plan=plan) is None
        assert network_injector() is None
        # ...but the endpoint name is still registered so this process
        # stamps CALLER_HEADER and remote inbound rules can match it.
        assert local_endpoint() == "gw0"
        assert CALLER_HEADER == "X-Uvmrepro-Caller"

    def test_network_family_installs_injector(self):
        plan = _partition_plan({"src": "gw0", "dst": "*", "after_s": 0.0})
        inj = install_network_chaos(local="gw0", plan=plan)
        assert inj is not None
        assert network_injector() is inj
        assert inj.local == "gw0"

    def test_reset_clears_both(self):
        plan = _partition_plan({"src": "gw0", "dst": "*", "after_s": 0.0})
        install_network_chaos(local="gw0", plan=plan)
        reset_network_chaos()
        assert network_injector() is None
        assert local_endpoint() is None

    def test_none_plan_clears_injector_keeps_name(self):
        plan = _partition_plan({"src": "gw0", "dst": "*", "after_s": 0.0})
        install_network_chaos(local="gw0", plan=plan)
        assert install_network_chaos(plan=None) is None
        assert network_injector() is None
        assert local_endpoint() == "gw0"
