"""Unit tests for the model-level injector and its scoped activation."""

from repro.chaos import (
    FaultPlan,
    FaultSpec,
    MODEL_BUFFER_OVERFLOW,
    MODEL_DMA_FAIL,
    MODEL_PMA_FAIL,
    PROCESS_KILL,
    make_injector,
    model_injection,
    set_active_plan,
)
from repro.chaos.injector import ChaosInjector
from repro.sim.rng import SimRng

MODEL_PLAN = FaultPlan(seed=3, faults=(FaultSpec(point=MODEL_DMA_FAIL, max_fires=2),))


class TestMakeInjector:
    def test_none_when_nothing_armed(self):
        set_active_plan(None)
        try:
            assert make_injector(SimRng(1)) is None
        finally:
            set_active_plan(None, reset=True)

    def test_armed_inside_model_injection_scope(self):
        with model_injection(MODEL_PLAN):
            injector = make_injector(SimRng(1))
            assert isinstance(injector, ChaosInjector)
        assert make_injector(SimRng(1)) is None

    def test_process_only_plan_never_arms(self):
        plan = FaultPlan(faults=(FaultSpec(point=PROCESS_KILL),))
        with model_injection(plan):
            assert make_injector(SimRng(1)) is None

    def test_env_plan_arms_only_with_activate_always(self):
        plan = FaultPlan(faults=(FaultSpec(point=MODEL_DMA_FAIL),))
        set_active_plan(plan)
        try:
            assert make_injector(SimRng(1)) is None
            always = FaultPlan(
                faults=(
                    FaultSpec(point=MODEL_DMA_FAIL, args={"activate": "always"}),
                )
            )
            set_active_plan(always)
            assert make_injector(SimRng(1)) is not None
        finally:
            set_active_plan(None, reset=True)

    def test_scopes_nest_and_restore(self):
        inner = FaultPlan(faults=(FaultSpec(point=MODEL_PMA_FAIL),))
        with model_injection(MODEL_PLAN):
            with model_injection(inner):
                injector = make_injector(SimRng(1))
                assert injector is not None and injector.plan is inner
            injector = make_injector(SimRng(1))
            assert injector is not None and injector.plan is MODEL_PLAN


class TestChaosInjector:
    def test_fire_honours_max_fires(self):
        injector = ChaosInjector(MODEL_PLAN, SimRng(1))
        assert injector.fire(MODEL_DMA_FAIL) is not None
        assert injector.fire(MODEL_DMA_FAIL) is not None
        assert injector.fire(MODEL_DMA_FAIL) is None  # budget of 2 spent
        assert injector.fired == {MODEL_DMA_FAIL: 2}
        assert injector.fired_total() == 2

    def test_unlisted_point_never_fires(self):
        injector = ChaosInjector(MODEL_PLAN, SimRng(1))
        assert injector.fire(MODEL_BUFFER_OVERFLOW) is None
        assert injector.fired_total() == 0

    def test_certain_probability_consumes_no_randomness(self):
        rng = SimRng(1)
        injector = ChaosInjector(MODEL_PLAN, rng)
        before = rng.fork("probe").uniform()
        injector.fire(MODEL_DMA_FAIL)
        after = rng.fork("probe").uniform()
        assert before == after

    def test_probabilistic_fire_is_seed_deterministic(self):
        plan = FaultPlan(
            seed=3,
            faults=(
                FaultSpec(point=MODEL_DMA_FAIL, probability=0.5, max_fires=100),
            ),
        )
        runs = []
        for _ in range(2):
            injector = ChaosInjector(plan, SimRng(42))
            runs.append(
                [injector.fire(MODEL_DMA_FAIL) is not None for _ in range(64)]
            )
        assert runs[0] == runs[1]
        assert True in runs[0] and False in runs[0]
