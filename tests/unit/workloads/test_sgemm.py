"""Unit tests for the tiled SGEMM workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.workloads.sgemm import SgemmWorkload


@pytest.fixture
def build():
    space = AddressSpace()
    wl = SgemmWorkload(n=512, tile=128)
    return wl, space, wl.build(space, SimRng(2))


class TestStructure:
    def test_three_ranges(self, build):
        _, _, b = build
        assert set(b.ranges) == {"A", "B", "C"}

    def test_one_stream_per_grid_block(self, build):
        wl, _, b = build
        grid = wl.n // wl.tile
        assert len(b.streams) == grid * grid

    def test_streams_touch_all_three_matrices(self, build):
        wl, space, b = build
        a, bm, c = b.ranges["A"], b.ranges["B"], b.ranges["C"]
        pages = b.streams[0].pages
        assert ((pages >= a.start_page) & (pages < a.end_page)).any()
        assert ((pages >= bm.start_page) & (pages < bm.end_page)).any()
        assert ((pages >= c.start_page) & (pages < c.end_page)).any()

    def test_only_c_pages_written(self, build):
        _, _, b = build
        for stream in b.streams:
            c_range = b.ranges["C"]
            written = stream.pages[stream.writes]
            assert (written >= c_range.start_page).all()
            assert (written < c_range.end_page_aligned).all()

    def test_full_coverage_of_c(self, build):
        """Every page of C is written by some block."""
        _, _, b = build
        c = b.ranges["C"]
        written = np.concatenate([s.pages[s.writes] for s in b.streams])
        covered = np.unique(written)
        expected = np.arange(c.start_page, c.start_page + c.npages)
        assert np.array_equal(np.intersect1d(covered, expected), expected)

    def test_reuse_exists(self, build):
        """A row-bands are shared across a grid row: the driver-invisible
        reuse the paper highlights."""
        wl, _, b = build
        grid = wl.n // wl.tile
        first_row_blocks = b.streams[:grid]
        a_pages = [set(s.pages[: len(s.pages) // 2].tolist()) for s in first_row_blocks]
        shared = set.intersection(*a_pages)
        assert shared, "grid-row blocks must share A band pages"

    def test_flops(self):
        wl = SgemmWorkload(n=256, tile=128)
        assert wl.flops == 2 * 256**3

    def test_flops_attributed_to_streams(self, build):
        wl, _, b = build
        total = sum(s.flops_per_access * len(s) for s in b.streams)
        assert total == pytest.approx(wl.flops, rel=0.01)

    def test_required_bytes(self):
        assert SgemmWorkload(n=512).required_bytes() == 3 * 512 * 512 * 4


class TestValidation:
    def test_tile_must_divide_n(self):
        with pytest.raises(ConfigurationError):
            SgemmWorkload(n=100, tile=64)

    def test_positive_params(self):
        with pytest.raises(ConfigurationError):
            SgemmWorkload(n=0)
