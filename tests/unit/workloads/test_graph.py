"""Unit tests for the BFS graph workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.address_space import AddressSpace
from repro.mem.advise import MemAdvise
from repro.sim.rng import SimRng
from repro.workloads.graph import BfsWorkload


@pytest.fixture
def rng():
    return SimRng(6)


def build(rng, **kwargs):
    space = AddressSpace()
    kwargs.setdefault("n_vertices", 4096)
    kwargs.setdefault("avg_degree", 8)
    wl = BfsWorkload(**kwargs)
    return wl, space, wl.build(space, rng)


class TestStructure:
    def test_csr_ranges(self, rng):
        _, _, b = build(rng)
        assert set(b.ranges) == {"offsets", "edges", "status"}

    def test_level_phases(self, rng):
        wl, _, b = build(rng, levels=3)
        assert b.phases is not None
        assert len(b.phases) == 3

    def test_frontier_ramp(self):
        wl = BfsWorkload(n_vertices=4096, levels=5)
        sizes = wl._frontier_sizes()
        peak = max(range(5), key=lambda i: sizes[i])
        assert 0 < peak < 4  # explodes then collapses

    def test_edges_scattered(self, rng):
        # a high-degree graph so the edge array dwarfs the frontier's
        # touches and the scatter is visible at page granularity
        _, _, b = build(rng, avg_degree=256)
        edges = b.ranges["edges"]
        stream = b.phases[0].streams[0]
        e_pages = stream.pages[
            (stream.pages >= edges.start_page) & (stream.pages < edges.end_page_aligned)
        ]
        assert e_pages.size > 4
        gaps = np.abs(np.diff(np.sort(e_pages)))
        assert (gaps > 1).any()  # data-dependent scatter

    def test_status_written(self, rng):
        _, _, b = build(rng)
        status = b.ranges["status"]
        s = b.phases[0].streams[0]
        written = s.pages[s.writes]
        assert written.size > 0
        assert (written >= status.start_page).all()

    def test_pin_edges_advises_range(self, rng):
        _, space, _ = build(rng, pin_edges=True)
        edges_index = [r.index for r in space.ranges if r.name == "edges"][0]
        assert space.advise_of_range(edges_index) is MemAdvise.PINNED_HOST

    def test_host_frontier_adds_host_access(self, rng):
        _, _, b = build(rng, host_frontier=True, levels=3)
        assert b.phases[0].host_before is None
        assert b.phases[1].host_before is not None
        assert b.phases[1].host_before.writes is True

    def test_deterministic(self):
        a = build(SimRng(6))[2]
        b = build(SimRng(6))[2]
        assert a.streams[0].pages.tolist() == b.streams[0].pages.tolist()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BfsWorkload(n_vertices=0)
        with pytest.raises(ConfigurationError):
            BfsWorkload(levels=0)


class TestRegistryIntegration:
    def test_bfs_in_extra_registry(self):
        from repro.units import MiB
        from repro.workloads.registry import (
            all_workload_names,
            make_workload,
            workload_names,
        )

        assert "bfs" in all_workload_names()
        assert "bfs" not in workload_names()  # Table I keeps the paper's rows
        wl = make_workload("bfs", 32 * MiB)
        assert 16 * MiB <= wl.required_bytes() <= 64 * MiB
