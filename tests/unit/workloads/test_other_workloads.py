"""Unit tests for stream/cufft/tealeaf/hpgmg/cusparse workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.units import MiB
from repro.workloads.cusparse import CusparseWorkload
from repro.workloads.fft import CufftWorkload, _bit_reverse_permutation
from repro.workloads.hpgmg import HpgmgWorkload
from repro.workloads.stream_triad import StreamTriadWorkload
from repro.workloads.tealeaf import TealeafWorkload


@pytest.fixture
def rng():
    return SimRng(4)


class TestStreamTriad:
    def test_three_equal_vectors(self, rng):
        space = AddressSpace()
        build = StreamTriadWorkload(6 * MiB).build(space, rng)
        assert set(build.ranges) == {"a", "b", "c"}
        sizes = {r.npages for r in build.ranges.values()}
        assert len(sizes) == 1

    def test_dependency_order_b_c_then_a(self, rng):
        """Each stream reads b and c before writing a (Section IV-B's
        page-access dependency)."""
        space = AddressSpace()
        build = StreamTriadWorkload(6 * MiB).build(space, rng)
        a = build.ranges["a"]
        for stream in build.streams[:10]:
            assert len(stream) == 3
            assert stream.writes.tolist() == [False, False, True]
            assert a.contains_page(int(stream.pages[2]))

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamTriadWorkload(10)


class TestCufft:
    def test_bit_reverse_is_permutation(self):
        rev = _bit_reverse_permutation(16)
        assert sorted(rev.tolist()) == list(range(16))
        assert rev[1] == 8  # 0001 -> 1000

    def test_two_buffers(self, rng):
        space = AddressSpace()
        build = CufftWorkload(4 * MiB).build(space, rng)
        assert set(build.ranges) == {"signal", "spectrum"}

    def test_forward_and_inverse_passes(self, rng):
        """Every page of both buffers is both read and written across
        the forward+inverse pair."""
        space = AddressSpace()
        build = CufftWorkload(1 * MiB, passes_per_direction=1).build(space, rng)
        written = np.unique(np.concatenate([s.pages[s.writes] for s in build.streams]))
        n_pages = build.ranges["signal"].npages
        assert written.size == 2 * n_pages  # both buffers written once each

    def test_fault_footprint_smaller_than_touch_count(self, rng):
        """Multi-pass reuse: total accesses exceed unique pages (why
        cuFFT has by far the fewest faults per byte in Table I)."""
        space = AddressSpace()
        build = CufftWorkload(1 * MiB).build(space, rng)
        unique = np.unique(np.concatenate([s.pages for s in build.streams])).size
        assert build.total_accesses > 2 * unique


class TestTealeaf:
    def test_four_field_arrays(self, rng):
        space = AddressSpace()
        build = TealeafWorkload(n=256, iterations=1).build(space, rng)
        assert set(build.ranges) == {"u", "p", "r", "w"}

    def test_stencil_reads_halo_rows(self, rng):
        space = AddressSpace()
        wl = TealeafWorkload(n=256, iterations=1, rows_per_stream=8)
        build = wl.build(space, rng)
        # interior stream index 1 covers rows 8..16 but reads p rows 7..17
        p = build.ranges["p"]
        s = build.streams[1]
        p_pages = s.pages[(s.pages >= p.start_page) & (s.pages < p.end_page_aligned)]
        row_bytes = 256 * 8
        first_byte = (int(p_pages.min()) - p.start_page) * 4096
        assert first_byte < 8 * row_bytes  # reaches into row 7

    def test_iterations_multiply_streams(self, rng):
        one = TealeafWorkload(n=256, iterations=1).build(AddressSpace(), rng)
        three = TealeafWorkload(n=256, iterations=3).build(AddressSpace(), rng)
        assert len(three.streams) == 3 * len(one.streams)

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            TealeafWorkload(n=2)


class TestHpgmg:
    def test_level_hierarchy_shrinks(self, rng):
        space = AddressSpace()
        build = HpgmgWorkload(fine_n=256, levels=3, v_cycles=1).build(space, rng)
        sizes = [build.ranges[f"level{i}"].nbytes for i in range(3)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_v_cycle_touches_every_level(self, rng):
        space = AddressSpace()
        build = HpgmgWorkload(fine_n=256, levels=3, v_cycles=1).build(space, rng)
        touched = np.unique(np.concatenate([s.pages for s in build.streams]))
        for i in range(3):
            rng_i = build.ranges[f"level{i}"]
            assert ((touched >= rng_i.start_page) & (touched < rng_i.end_page)).any()

    def test_coarse_levels_scattered(self, rng):
        """Coarse boxes launch in near-arbitrary order: the random-like
        segments of Fig. 7."""
        space = AddressSpace()
        wl = HpgmgWorkload(fine_n=512, levels=2, v_cycles=1, box_pages=2)
        build = wl.build(space, rng)
        lvl1 = build.ranges["level1"]
        firsts = [
            int(s.pages[0])
            for s in build.streams
            if lvl1.contains_page(int(s.pages[0]))
        ]
        displacement = np.abs(np.diff(firsts))
        assert displacement.mean() > 2  # not a clean sequential sweep

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            HpgmgWorkload(fine_n=100, levels=4)


class TestCusparse:
    def test_six_ranges(self, rng):
        space = AddressSpace()
        build = CusparseWorkload(n=512).build(space, rng)
        assert set(build.ranges) == {
            "dense",
            "csr_vals",
            "csr_cols",
            "csr_rowptr",
            "B",
            "C",
        }

    def test_phase_one_sweeps_dense_sequentially(self, rng):
        space = AddressSpace()
        build = CusparseWorkload(n=512, rows_per_stream=64).build(space, rng)
        dense = build.ranges["dense"]
        first = build.streams[0].pages
        d_pages = first[(first >= dense.start_page) & (first < dense.end_page)]
        assert np.array_equal(d_pages, np.sort(d_pages))

    def test_spmm_scatters_into_b(self, rng):
        space = AddressSpace()
        wl = CusparseWorkload(n=1024, density=0.02)
        build = wl.build(space, rng)
        b = build.ranges["B"]
        spmm_streams = build.streams[len(build.streams) // 2 :]
        b_pages = np.concatenate(
            [
                s.pages[(s.pages >= b.start_page) & (s.pages < b.end_page_aligned)]
                for s in spmm_streams[:4]
            ]
        )
        diffs = np.abs(np.diff(b_pages.astype(np.int64)))
        assert (diffs > 1).mean() > 0.3  # scattered, not a sweep

    def test_density_validation(self):
        with pytest.raises(ConfigurationError):
            CusparseWorkload(n=512, density=0.0)
