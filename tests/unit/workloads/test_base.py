"""Unit tests for the workload base utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.address_space import AddressSpace
from repro.units import MiB
from repro.workloads.base import (
    HostAccess,
    KernelPhase,
    Workload,
    WorkloadBuild,
    _dedup_consecutive,
    chunk_indices,
)


class TestPagesOfElements:
    @pytest.fixture
    def rng_range(self):
        space = AddressSpace()
        return space.malloc_managed(2 * MiB, name="x")

    def test_element_to_page_math(self, rng_range):
        # 8-byte elements: 512 per page
        pages = Workload.pages_of_elements(
            rng_range, np.array([0, 511, 512]), 8, 4096
        )
        assert pages.tolist() == [rng_range.start_page, rng_range.start_page + 1]

    def test_consecutive_retouches_collapsed(self, rng_range):
        pages = Workload.pages_of_elements(rng_range, np.array([0, 1, 2, 600]), 8, 4096)
        assert pages.size == 2  # 0,1,2 share a page

    def test_non_consecutive_repeats_preserved(self, rng_range):
        """Re-touching a page later IS a separate access (TLB re-walk
        possible if evicted in between)."""
        pages = Workload.pages_of_elements(
            rng_range, np.array([0, 600, 0]), 8, 4096
        )
        assert pages.size == 3

    def test_escaping_range_rejected(self, rng_range):
        with pytest.raises(ConfigurationError):
            Workload.pages_of_elements(rng_range, np.array([10**9]), 8, 4096)

    def test_bad_element_size(self, rng_range):
        with pytest.raises(ConfigurationError):
            Workload.pages_of_elements(rng_range, np.array([0]), 0, 4096)


class TestDedupConsecutive:
    def test_runs_collapse(self):
        out = _dedup_consecutive(np.array([5, 5, 5, 6, 6, 5]))
        assert out.tolist() == [5, 6, 5]

    def test_short_arrays(self):
        assert _dedup_consecutive(np.array([3])).tolist() == [3]
        assert _dedup_consecutive(np.array([], dtype=np.int64)).size == 0


class TestChunkIndices:
    def test_even_split(self):
        assert chunk_indices(10, 5) == [(0, 5), (5, 10)]

    def test_ragged_tail(self):
        assert chunk_indices(7, 3) == [(0, 3), (3, 6), (6, 7)]

    def test_bad_chunk(self):
        with pytest.raises(ConfigurationError):
            chunk_indices(5, 0)


class TestWorkloadBuild:
    def test_from_phases_flattens_streams(self):
        from repro.gpu.warp import WarpStream

        s1 = WarpStream(0, np.array([0]))
        s2 = WarpStream(1, np.array([1]))
        build = WorkloadBuild.from_phases(
            [KernelPhase(streams=[s1]), KernelPhase(streams=[s2])], ranges={}
        )
        assert build.streams == [s1, s2]
        assert build.total_accesses == 2
        assert len(build.phases) == 2

    def test_host_access_defaults(self):
        access = HostAccess(pages=np.array([1, 2]))
        assert access.writes is False

    def test_make_stream_spreads_flops(self):
        stream = Workload.make_stream(0, np.arange(4), flops=100.0)
        assert stream.flops_per_access == 25.0
