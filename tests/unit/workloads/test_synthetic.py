"""Unit tests for the regular/random page-touch workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.address_space import AddressSpace
from repro.sim.rng import SimRng
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess, RegularAccess


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def rng():
    return SimRng(9)


class TestRegular:
    def test_one_stream_per_page_in_order(self, space, rng):
        build = RegularAccess(2 * MiB).build(space, rng)
        assert len(build.streams) == 512
        pages = [int(s.pages[0]) for s in build.streams]
        assert pages == list(range(512))

    def test_writes_marked(self, space, rng):
        build = RegularAccess(8 * 4096).build(space, rng)
        assert all(s.writes.all() for s in build.streams)

    def test_read_only_variant(self, space, rng):
        build = RegularAccess(8 * 4096, write=False).build(space, rng)
        assert all(s.writes is None for s in build.streams)

    def test_pages_per_stream_chunks(self, space, rng):
        build = RegularAccess(2 * MiB, pages_per_stream=128).build(space, rng)
        assert len(build.streams) == 4
        assert len(build.streams[0]) == 128

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            RegularAccess(0)
        with pytest.raises(ConfigurationError):
            RegularAccess(4096, pages_per_stream=0)


class TestRandom:
    def test_covers_every_page_exactly_once(self, space, rng):
        build = RandomAccess(2 * MiB).build(space, rng)
        pages = sorted(int(s.pages[0]) for s in build.streams)
        assert pages == list(range(512))

    def test_order_is_shuffled(self, space, rng):
        build = RandomAccess(2 * MiB).build(space, rng)
        pages = [int(s.pages[0]) for s in build.streams]
        assert pages != sorted(pages)

    def test_deterministic_under_seed(self):
        def pages_with_seed(seed):
            build = RandomAccess(1 * MiB).build(AddressSpace(), SimRng(seed))
            return [int(s.pages[0]) for s in build.streams]

        assert pages_with_seed(3) == pages_with_seed(3)
        assert pages_with_seed(3) != pages_with_seed(4)

    def test_required_bytes(self):
        assert RandomAccess(5 * MiB).required_bytes() == 5 * MiB
