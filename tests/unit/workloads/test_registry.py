"""Unit tests for the workload registry."""

import pytest

from repro.errors import ConfigurationError
from repro.units import MiB
from repro.workloads.registry import PAPER_WORKLOADS, make_workload, workload_names


class TestRegistry:
    def test_all_eight_paper_rows_present(self):
        assert workload_names() == [
            "regular",
            "random",
            "sgemm",
            "stream",
            "cufft",
            "tealeaf",
            "hpgmg",
            "cusparse",
        ]

    @pytest.mark.parametrize("name", list(PAPER_WORKLOADS))
    def test_factories_hit_requested_size(self, name):
        target = 48 * MiB
        wl = make_workload(name, target)
        actual = wl.required_bytes()
        assert 0.4 * target <= actual <= 1.6 * target, (
            f"{name}: {actual} vs target {target}"
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_workload("linpack", 1 * MiB)

    def test_non_positive_size(self):
        with pytest.raises(ConfigurationError):
            make_workload("regular", 0)

    @pytest.mark.parametrize("name", list(PAPER_WORKLOADS))
    def test_describe(self, name):
        wl = make_workload(name, 16 * MiB)
        assert wl.name == name
        assert name in wl.describe()
