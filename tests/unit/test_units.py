"""Unit tests for repro.units: geometry constants and conversions."""

import pytest

from repro import units
from repro.units import (
    BIG_PAGE_SIZE,
    PAGE_SIZE,
    PAGES_PER_BIG_PAGE,
    PAGES_PER_VABLOCK,
    VABLOCK_SIZE,
    bytes_to_pages,
    human_size,
    human_time_us,
    ns_to_us,
    pages_to_bytes,
    us,
)


class TestGeometryConstants:
    def test_paper_geometry(self):
        """Section III/IV geometry: 4KB pages, 64KB big pages, 2MB blocks."""
        assert PAGE_SIZE == 4096
        assert BIG_PAGE_SIZE == 64 * 1024
        assert VABLOCK_SIZE == 2 * 1024 * 1024

    def test_derived_ratios(self):
        assert PAGES_PER_BIG_PAGE == 16
        assert PAGES_PER_VABLOCK == 512
        assert units.BIG_PAGES_PER_VABLOCK == 32

    def test_tree_depth_is_log2_of_block_pages(self):
        """The paper: 9 levels = log2(2MB / 4KB)."""
        assert 2**units.DENSITY_TREE_LEVELS == PAGES_PER_VABLOCK

    def test_default_batch_and_threshold(self):
        assert units.DEFAULT_BATCH_SIZE == 256
        assert units.DEFAULT_DENSITY_THRESHOLD == 51


class TestConversions:
    def test_bytes_to_pages_rounds_up(self):
        assert bytes_to_pages(1) == 1
        assert bytes_to_pages(4096) == 1
        assert bytes_to_pages(4097) == 2

    def test_pages_to_bytes_round_trip(self):
        assert pages_to_bytes(bytes_to_pages(8192)) == 8192

    def test_ns_to_us(self):
        assert ns_to_us(1500) == 1.5

    def test_us_helper_rounds(self):
        assert us(1.5) == 1500
        assert us(0.0004) == 0

    def test_human_size(self):
        assert human_size(4096) == "4KB"
        assert human_size(2 * 1024 * 1024) == "2MB"
        assert human_size(3 * 1024**3) == "3GB"
        assert human_size(100) == "100B"

    def test_human_time(self):
        assert human_time_us(1500) == "1.5us"
        assert human_time_us(2_500_000) == "2.5ms"
        assert human_time_us(3_000_000_000) == "3s"
