"""Unit tests for the thrashing detector and its pin-remote remedy."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSetup, simulate
from repro.ext.thrashing import ThrashingDetector
from repro.units import MiB
from repro.workloads.synthetic import RandomAccess


class TestDetector:
    def test_not_thrashing_below_threshold(self):
        det = ThrashingDetector(evict_threshold=3)
        det.record_eviction(5, 1000)
        det.on_fault(5, 1500)
        assert not det.should_pin(5)

    def test_pins_after_threshold_and_quick_refault(self):
        det = ThrashingDetector(evict_threshold=3, window_ns=10_000)
        for t in (1000, 2000, 3000):
            det.record_eviction(5, t)
        det.on_fault(5, 4000)  # within window of last eviction
        assert det.should_pin(5)
        assert det.pinned_blocks == 1

    def test_slow_refault_is_not_thrashing(self):
        det = ThrashingDetector(evict_threshold=1, window_ns=100)
        det.record_eviction(5, 1000)
        det.on_fault(5, 10_000)  # long after the eviction
        assert not det.should_pin(5)

    def test_blocks_tracked_independently(self):
        det = ThrashingDetector(evict_threshold=1, window_ns=10_000)
        det.record_eviction(1, 1000)
        det.on_fault(1, 1500)
        assert det.should_pin(1)
        assert not det.should_pin(2)

    def test_pinned_is_sticky(self):
        det = ThrashingDetector(evict_threshold=1, window_ns=10_000)
        det.record_eviction(1, 1000)
        det.on_fault(1, 1500)
        det.on_fault(1, 10**9)  # much later: stays pinned
        assert det.should_pin(1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThrashingDetector(evict_threshold=0)
        with pytest.raises(ConfigurationError):
            ThrashingDetector(window_ns=0)


class TestEndToEnd:
    def test_mitigation_pins_and_reduces_traffic(self):
        setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
        data = int(32 * MiB * 1.5)
        stock = simulate(RandomAccess(data), setup)
        mitigated = simulate(
            RandomAccess(data), setup.with_driver(thrashing_mitigation=True)
        )
        assert mitigated.counters["thrash.blocks_pinned"] > 0
        assert mitigated.counters["thrash.pages_pinned"] > 0
        assert mitigated.evictions < stock.evictions
        assert mitigated.dma.total_bytes < stock.dma.total_bytes
        assert mitigated.total_time_ns < stock.total_time_ns

    def test_mitigation_inert_when_undersubscribed(self):
        setup = ExperimentSetup().with_gpu(memory_bytes=32 * MiB)
        run = simulate(
            RandomAccess(8 * MiB), setup.with_driver(thrashing_mitigation=True)
        )
        assert run.counters["thrash.blocks_pinned"] == 0
        assert run.counters["remote.pages_mapped"] == 0
