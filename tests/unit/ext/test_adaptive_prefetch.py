"""Unit tests for the adaptive prefetch-threshold controller."""

import pytest

from repro.core import counters as C
from repro.errors import ConfigurationError
from repro.ext.adaptive_prefetch import AdaptiveThresholdController
from repro.sim.stats import CounterSet


def counters_with_evictions(n):
    c = CounterSet()
    if n:
        c.add(C.EVICTIONS, n)
    return c


class TestQuietDescent:
    def test_steps_toward_aggressive_when_quiet(self):
        ctrl = AdaptiveThresholdController(initial_threshold=51, step_down=10)
        c = counters_with_evictions(0)
        thresholds = [ctrl.observe(c) for _ in range(10)]
        assert thresholds[0] == 41
        assert thresholds[-1] == 1  # floor at aggressive

    def test_descent_is_gradual(self):
        ctrl = AdaptiveThresholdController(initial_threshold=51, step_down=10)
        assert ctrl.observe(counters_with_evictions(0)) == 41


class TestPressureJump:
    def test_eviction_jumps_straight_to_conservative(self):
        ctrl = AdaptiveThresholdController(initial_threshold=51)
        assert ctrl.observe(counters_with_evictions(3)) == 100

    def test_window_deltas_not_cumulative(self):
        """Only *new* evictions count as pressure."""
        ctrl = AdaptiveThresholdController(initial_threshold=51)
        c = counters_with_evictions(3)
        ctrl.observe(c)  # pressure -> 100
        t = ctrl.observe(c)  # same cumulative count: quiet window
        assert t < 100

    def test_capacity_guard(self):
        ctrl = AdaptiveThresholdController(initial_threshold=51)
        t = ctrl.observe(counters_with_evictions(0), used_fraction=0.9)
        assert t == 100

    def test_footprint_guard_is_a_priori(self):
        """An oversubscribed allocation never earns aggression - the
        paper's own Section VI-B heuristic."""
        ctrl = AdaptiveThresholdController(initial_threshold=51, managed_fraction=1.3)
        for _ in range(10):
            t = ctrl.observe(counters_with_evictions(0))
        assert t == 100

    def test_prefetch_conservative_property(self):
        ctrl = AdaptiveThresholdController(initial_threshold=51)
        assert not ctrl.prefetch_conservative
        ctrl.observe(counters_with_evictions(1))
        assert ctrl.prefetch_conservative


class TestValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            AdaptiveThresholdController(initial_threshold=0)
        with pytest.raises(ConfigurationError):
            AdaptiveThresholdController(aggressive_threshold=101)

    def test_adjustment_history(self):
        ctrl = AdaptiveThresholdController()
        ctrl.observe(counters_with_evictions(0))
        ctrl.observe(counters_with_evictions(0))
        assert len(ctrl.adjustments) == 2
