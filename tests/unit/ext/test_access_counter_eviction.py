"""Unit tests for access-counter-aware eviction."""

import numpy as np
import pytest

from repro.errors import OutOfDeviceMemoryError, SimulationError
from repro.ext.access_counter_eviction import AccessCounterEviction


@pytest.fixture
def counters():
    return np.zeros(8, dtype=np.int64)


@pytest.fixture
def policy(counters):
    return AccessCounterEviction(counters, protect_window=2)


class TestTemperature:
    def test_baseline_snapshot_at_insert(self, policy, counters):
        counters[0] = 100
        policy.insert(0)
        counters[0] = 150
        assert policy.temperature(0) == 50

    def test_victim_is_coldest(self, policy, counters):
        for vb in (0, 1, 2, 3):
            policy.insert(vb)
        counters[0] += 100
        counters[1] += 5
        counters[2] += 50
        counters[3] += 75
        # all inserted before protect window cutoff? window=2 protects 2, 3
        assert policy.select_victim() == 1

    def test_hot_resident_block_survives(self, policy, counters):
        """The fix for Section VI-A's pathology: a block that is hot on
        the GPU (many counted accesses, zero faults) is never the victim."""
        for vb in (0, 1, 2):
            policy.insert(vb)
        policy.insert(3)  # newest, protected
        counters[0] += 10_000  # hot: GPU reuse without faults
        assert policy.select_victim() != 0


class TestInsertionProtection:
    def test_fresh_blocks_not_victimized(self, policy, counters):
        policy.insert(0)
        counters[0] += 50
        policy.insert(1)  # within protect window (2): temp 0 but fresh
        policy.insert(2)
        assert policy.select_victim() == 0

    def test_fallback_when_all_protected(self, counters):
        policy = AccessCounterEviction(counters, protect_window=100)
        policy.insert(0)
        policy.insert(1)
        assert policy.select_victim() is not None


class TestInterfaceParity:
    def test_lru_like_interface(self, policy):
        policy.insert(5)
        assert 5 in policy
        assert len(policy) == 1
        policy.touch(5)  # no-op but counted
        assert policy.promotions == 1
        policy.remove(5)
        assert 5 not in policy

    def test_evict_victim_unlinks(self, policy, counters):
        policy.insert(0)
        policy.insert(1)
        policy.insert(2)
        victim = policy.evict_victim(exclude=(0,))
        assert victim != 0
        assert victim not in policy

    def test_out_of_memory_when_all_excluded(self, policy):
        policy.insert(0)
        with pytest.raises(OutOfDeviceMemoryError):
            policy.evict_victim(exclude=(0,))

    def test_errors(self, policy):
        policy.insert(0)
        with pytest.raises(SimulationError):
            policy.insert(0)
        with pytest.raises(SimulationError):
            policy.touch(9)
        with pytest.raises(SimulationError):
            policy.remove(9)

    def test_order_coldest_first(self, policy, counters):
        for vb in (0, 1):
            policy.insert(vb)
        counters[0] += 10
        assert policy.order() == [1, 0]

    def test_none_counters_rejected(self):
        with pytest.raises(SimulationError):
            AccessCounterEviction(None)
