"""Unit tests for access-counter-triggered promotion of remote pages."""

import numpy as np
import pytest

from repro.core.driver import DriverConfig, UvmDriver
from repro.errors import ConfigurationError
from repro.ext.counter_migration import CounterMigrationController
from repro.gpu.device import GpuDeviceConfig
from repro.gpu.warp import WarpStream
from repro.mem.address_space import AddressSpace
from repro.mem.advise import MemAdvise
from repro.sim.rng import SimRng
from repro.units import MiB


class TestController:
    def test_no_candidates_without_remote_pages(self):
        ctrl = CounterMigrationController(promote_threshold=10)
        counters = np.array([100, 100])
        remote = np.zeros(1024, dtype=bool)
        assert ctrl.candidates(counters, remote, 512) == []

    def test_hot_remote_block_flagged_after_threshold(self):
        ctrl = CounterMigrationController(promote_threshold=10, cooldown=0)
        counters = np.array([0, 0])
        remote = np.zeros(1024, dtype=bool)
        remote[512:600] = True  # block 1 has remote pages
        assert ctrl.candidates(counters, remote, 512) == []  # baseline set
        counters[1] = 50
        assert ctrl.candidates(counters, remote, 512) == [1]

    def test_baseline_resets_after_flagging(self):
        ctrl = CounterMigrationController(promote_threshold=10, cooldown=0)
        counters = np.array([0])
        remote = np.ones(512, dtype=bool)
        ctrl.candidates(counters, remote, 512)
        counters[0] = 50
        assert ctrl.candidates(counters, remote, 512) == [0]
        counters[0] = 55  # only +5 since last flag: below threshold
        assert ctrl.candidates(counters, remote, 512) == []

    def test_cooldown_suppresses_reflagging(self):
        ctrl = CounterMigrationController(promote_threshold=1, cooldown=2)
        counters = np.array([0])
        remote = np.ones(512, dtype=bool)
        ctrl.candidates(counters, remote, 512)
        counters[0] = 100
        assert ctrl.candidates(counters, remote, 512) == [0]
        counters[0] = 200
        assert ctrl.candidates(counters, remote, 512) == []  # cooling down

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CounterMigrationController(promote_threshold=0)
        with pytest.raises(ConfigurationError):
            CounterMigrationController(cooldown=-1)


class TestEndToEnd:
    def _run(self, counter_migration: bool):
        space = AddressSpace()
        buf = space.malloc_managed(4 * MiB, name="data")
        space.mem_advise("data", MemAdvise.PINNED_HOST)
        pages = buf.pages()
        streams = [WarpStream(i, np.tile(pages, 8)) for i in range(8)]
        driver = UvmDriver(
            space=space,
            streams=streams,
            driver_config=DriverConfig(counter_migration=counter_migration),
            gpu_config=GpuDeviceConfig(
                memory_bytes=32 * MiB, track_access_counters=True
            ),
            rng=SimRng(2),
        )
        return driver, driver.run()

    def test_hot_remote_data_gets_promoted(self):
        driver, result = self._run(counter_migration=True)
        assert result.counters["counter_migration.blocks"] > 0
        assert result.counters["counter_migration.pages"] > 0
        assert driver.residency.total_resident_pages() > 0
        driver.residency.check_invariants()
        driver.gpu_table.check_against_residency(
            driver.residency.resident | driver.residency.remote_mapped
        )

    def test_promotion_cuts_remote_traffic_and_time(self):
        _, promoted = self._run(counter_migration=True)
        _, pinned_only = self._run(counter_migration=False)
        assert (
            promoted.counters["remote.accesses"]
            < pinned_only.counters["remote.accesses"]
        )
        assert promoted.total_time_ns < pinned_only.total_time_ns

    def test_requires_access_counters(self):
        space = AddressSpace()
        space.malloc_managed(2 * MiB)
        with pytest.raises(ConfigurationError):
            UvmDriver(
                space=space,
                streams=[],
                driver_config=DriverConfig(counter_migration=True),
                gpu_config=GpuDeviceConfig(memory_bytes=16 * MiB),
            )
