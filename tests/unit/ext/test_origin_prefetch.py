"""Unit tests for the fault-origin stream prefetcher."""

import numpy as np
import pytest

from repro.core.preprocess import VABlockBin
from repro.errors import ConfigurationError
from repro.ext.origin_prefetch import OriginStreamPrefetcher
from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.units import MiB


@pytest.fixture
def residency():
    space = AddressSpace()
    space.malloc_managed(4 * MiB)
    return ResidencyState(space)


def make_bin(pages, sms, vablock=0):
    pages = np.asarray(pages, dtype=np.int64)
    return VABlockBin(
        vablock_id=vablock,
        pages=pages,
        writes=np.zeros(pages.shape, dtype=bool),
        stream_ids=np.zeros(pages.shape, dtype=np.int64),
        sm_ids=np.asarray(sms, dtype=np.int64),
    )


class TestStrideDetection:
    def test_no_prediction_on_first_fault(self, residency):
        pf = OriginStreamPrefetcher()
        assert pf.prefetch_pages(residency, make_bin([10], [0])).size == 0

    def test_confirmed_stride_predicts_ahead(self, residency):
        pf = OriginStreamPrefetcher(depth=4)
        pf.prefetch_pages(residency, make_bin([10], [0]))
        predicted = pf.prefetch_pages(residency, make_bin([14], [0]))  # stride 4
        assert predicted.tolist() == [18, 22, 26, 30]

    def test_stride_change_resets_confidence(self, residency):
        pf = OriginStreamPrefetcher(depth=2, min_confirmations=2)
        pf.prefetch_pages(residency, make_bin([10], [0]))
        pf.prefetch_pages(residency, make_bin([14], [0]))  # stride 4, conf 1
        predicted = pf.prefetch_pages(residency, make_bin([15], [0]))  # stride 1
        assert predicted.size == 0

    def test_origins_tracked_independently(self, residency):
        pf = OriginStreamPrefetcher(depth=1)
        pf.prefetch_pages(residency, make_bin([10, 100], [0, 1]))
        predicted = pf.prefetch_pages(residency, make_bin([12, 103], [0, 1]))
        assert predicted.tolist() == [14, 106]

    def test_negative_stride(self, residency):
        pf = OriginStreamPrefetcher(depth=2)
        pf.prefetch_pages(residency, make_bin([100], [0]))
        predicted = pf.prefetch_pages(residency, make_bin([96], [0]))
        assert predicted.tolist() == [88, 92]


class TestClamping:
    def test_predictions_clamped_to_vablock(self, residency):
        pf = OriginStreamPrefetcher(depth=16)
        pf.prefetch_pages(residency, make_bin([400], [0]))
        predicted = pf.prefetch_pages(residency, make_bin([500], [0]))  # stride 100
        assert predicted.size == 0  # 600 escapes block 0

    def test_resident_pages_skipped(self, residency):
        residency.back_vablock(0)
        residency.make_resident(np.array([14]))
        pf = OriginStreamPrefetcher(depth=2)
        pf.prefetch_pages(residency, make_bin([10], [0]))
        predicted = pf.prefetch_pages(residency, make_bin([12], [0]))
        assert predicted.tolist() == [16]  # 14 resident, skipped

    def test_demand_pages_skipped(self, residency):
        pf = OriginStreamPrefetcher(depth=1)
        pf.prefetch_pages(residency, make_bin([10], [0]))
        predicted = pf.prefetch_pages(residency, make_bin([12, 14], [0, 5]))
        assert 14 not in predicted.tolist()


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            OriginStreamPrefetcher(depth=0)
        with pytest.raises(ConfigurationError):
            OriginStreamPrefetcher(min_confirmations=0)

    def test_table_reset_under_pressure(self, residency):
        pf = OriginStreamPrefetcher(max_origins=2)
        for sm in range(5):
            pf.prefetch_pages(residency, make_bin([sm * 3], [sm]))
        # no crash; table bounded
        assert len(pf._origins) <= 2
