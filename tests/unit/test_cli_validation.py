"""CLI argument validation and the machine-readable --json output."""

import json

import pytest

from repro.cli import main


def expect_clean_rejection(capsys, argv, fragment):
    """argparse must exit 2 with a one-line error, not a traceback."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert "Traceback" not in err


class TestNumericValidation:
    def test_zero_data_mib(self, capsys):
        expect_clean_rejection(
            capsys, ["run", "regular", "--data-mib", "0"], "must be positive"
        )

    def test_negative_gpu_mem(self, capsys):
        expect_clean_rejection(
            capsys, ["run", "regular", "--gpu-mem-mib", "-5"], "must be positive"
        )

    def test_zero_batch_size(self, capsys):
        expect_clean_rejection(
            capsys, ["run", "regular", "--batch-size", "0"], "must be positive"
        )

    def test_threshold_out_of_range(self, capsys):
        expect_clean_rejection(
            capsys, ["run", "regular", "--threshold", "0"], "must be in 1..100"
        )
        expect_clean_rejection(
            capsys, ["run", "regular", "--threshold", "101"], "must be in 1..100"
        )

    def test_non_integer(self, capsys):
        expect_clean_rejection(
            capsys, ["run", "regular", "--data-mib", "lots"], "expected an integer"
        )

    def test_negative_vablock(self, capsys):
        expect_clean_rejection(
            capsys, ["run", "regular", "--vablock-kib", "-1"], "must be >= 0"
        )

    def test_compare_and_trace_share_validation(self, capsys):
        expect_clean_rejection(
            capsys,
            ["compare", "regular", "--vs", "no-prefetch", "--data-mib", "-2"],
            "must be positive",
        )
        expect_clean_rejection(
            capsys, ["trace", "regular", "--gpu-mem-mib", "0"], "must be positive"
        )

    def test_valid_args_still_run(self, capsys):
        assert main(["run", "regular", "--data-mib", "4", "--gpu-mem-mib", "32"]) == 0


class TestServeDirectoryValidation:
    """``uvmrepro serve`` must exit 2 on unusable directories, not crash
    later from inside a worker or the journal."""

    def test_store_dir_under_a_file_exits_2(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        rc = main(["serve", "--store-dir", str(blocker / "store")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "uvmrepro serve: error:" in err
        assert "not writable" in err
        assert "Traceback" not in err

    def test_journal_path_under_a_file_exits_2(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        rc = main(
            [
                "serve",
                "--store-dir", str(tmp_path / "store"),
                "--journal-path", str(blocker / "journal.jsonl"),
            ]
        )
        assert rc == 2
        assert "journal" in capsys.readouterr().err


class TestJsonOutput:
    def test_json_mode_emits_result_document(self, capsys):
        rc = main(
            ["run", "regular", "--data-mib", "4", "--gpu-mem-mib", "32", "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["doc_version"] == 1
        assert doc["total_time_ns"] > 0
        assert doc["meta"]["workload"] == "regular"
        assert "preprocess" in doc["breakdown"]["rows_ns"]
        assert "service.map" in doc["service_breakdown"]["rows_ns"]
        assert doc["counters"]["faults.read"] > 0
        assert doc["dma"]["h2d_bytes"] > 0
        assert doc["config"]["driver"]["prefetch_enabled"] is True

    def test_json_matches_text_mode_totals(self, capsys):
        argv = ["run", "random", "--data-mib", "4", "--gpu-mem-mib", "32"]
        assert main(argv + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        text = capsys.readouterr().out
        total_us = doc["total_time_ns"] / 1000.0
        assert f"total simulated time: {total_us:,.1f} us" in text
