"""Unit tests for the trace and CSV-export CLI paths."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.trace.io import load_trace


class TestTraceCommand:
    def test_writes_npz_txt_csv(self, tmp_path, capsys):
        rc = main(
            [
                "trace",
                "regular",
                "--out",
                str(tmp_path),
                "--data-mib",
                "2",
                "--gpu-mem-mib",
                "16",
                "--no-prefetch",
            ]
        )
        assert rc == 0
        assert (tmp_path / "regular.npz").exists()
        assert (tmp_path / "regular.txt").exists()
        assert (tmp_path / "regular.csv").exists()
        out = capsys.readouterr().out
        assert "faults recorded" in out

    def test_trace_metadata_round_trip(self, tmp_path, capsys):
        main(
            [
                "trace",
                "random",
                "--out",
                str(tmp_path),
                "--data-mib",
                "2",
                "--gpu-mem-mib",
                "16",
                "--seed",
                "99",
            ]
        )
        trace, meta = load_trace(tmp_path / "random.npz")
        assert meta["workload"] == "random"
        assert meta["seed"] == 99
        assert meta["prefetch"] is True
        assert trace.n_faults > 0

    def test_phase_workload_traces(self, tmp_path, capsys):
        """tealeaf runs through the multi-kernel phase path."""
        rc = main(
            [
                "trace",
                "tealeaf",
                "--out",
                str(tmp_path),
                "--data-mib",
                "4",
                "--gpu-mem-mib",
                "32",
            ]
        )
        assert rc == 0
        trace, _ = load_trace(tmp_path / "tealeaf.npz")
        assert trace.n_faults > 0


class TestExhibitCsv:
    def test_exhibit_with_csv_export(self, tmp_path, capsys):
        rc = main(["exhibit", "fig6", "--csv", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig6.csv").exists()
        header = (tmp_path / "fig6.csv").read_text().splitlines()[0]
        assert "fault_leaf" in header
