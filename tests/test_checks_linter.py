"""The lint framework, one fixture per rule, and the baseline logic."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.checks.baseline import (
    BASELINE_VERSION,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)
from repro.checks.linter import LintReport, Violation, lint_paths
from repro.checks.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(root: Path, relpath: str, source: str) -> LintReport:
    """Write one fixture module under a fake repo root and lint it."""
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths(root, paths=[path])


def rules_hit(report: LintReport) -> set[str]:
    return {v.rule for v in report.violations}


# -- determinism-wallclock ----------------------------------------------------
def test_wallclock_flagged_in_core(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        """
        import time
        start = time.time()
        tick = time.perf_counter()
        """,
    )
    assert [v.rule for v in report.violations] == ["determinism-wallclock"] * 2


def test_wallclock_allowed_in_serve_and_cli(tmp_path):
    for relpath in ("src/repro/serve/thing.py", "src/repro/cli.py"):
        report = lint_snippet(
            tmp_path, relpath, "import time\nstart = time.time()\n"
        )
        assert report.violations == []


def test_wallclock_from_import_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/sim/thing.py",
        "from time import perf_counter, sleep\n",
    )
    assert rules_hit(report) == {"determinism-wallclock"}
    assert "perf_counter" in report.violations[0].message
    # sleep is not a wall-clock *read*
    assert "sleep" not in report.violations[0].message


def test_datetime_now_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        "import datetime\nstamp = datetime.datetime.now()\n",
    )
    assert rules_hit(report) == {"determinism-wallclock"}


# -- determinism-rng ----------------------------------------------------------
def test_rng_imports_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/workloads/thing.py",
        """
        import random
        from numpy.random import default_rng
        """,
    )
    assert [v.rule for v in report.violations] == ["determinism-rng"] * 2


def test_np_random_attribute_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        "import numpy as np\nx = np.random.rand(4)\n",
    )
    assert rules_hit(report) == {"determinism-rng"}
    assert "np.random.rand" in report.violations[0].message


def test_rng_wrapper_module_is_allowlisted(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/sim/rng.py",
        "import numpy as np\ngen = np.random.default_rng(7)\n",
    )
    assert report.violations == []


# -- units-magic-literal ------------------------------------------------------
def test_magic_literal_flagged_with_named_constant(tmp_path):
    report = lint_snippet(
        tmp_path, "src/repro/mem/thing.py", "GRANULE = 2097152\n"
    )
    assert rules_hit(report) == {"units-magic-literal"}
    assert "VABLOCK_SIZE" in report.violations[0].message


def test_magic_literal_ignores_non_power_of_two_and_small(tmp_path):
    report = lint_snippet(
        tmp_path, "src/repro/mem/thing.py", "a = 5000\nb = 2048\nc = 100\n"
    )
    assert report.violations == []


def test_magic_literal_out_of_scope(tmp_path):
    report = lint_snippet(
        tmp_path, "src/repro/serve/thing.py", "CHUNK = 1048576\n"
    )
    assert report.violations == []


def test_magic_literal_waiver(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/gpu/thing.py",
        "CAP = 4096  # lint: allow(units-magic-literal) entry count\n",
    )
    assert report.violations == []


def test_waiver_does_not_silence_other_rules(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/gpu/thing.py",
        "CAP = 4096  # lint: allow(bare-except)\n",
    )
    assert rules_hit(report) == {"units-magic-literal"}


# -- units-int-ns -------------------------------------------------------------
def test_int_ns_division_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        "def f(clock, ns):\n    clock.advance(ns / 2)\n",
    )
    assert rules_hit(report) == {"units-int-ns"}
    assert "true division" in report.violations[0].message


def test_int_ns_float_literal_in_charge_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/sim/thing.py",
        "def f(timer):\n    timer.charge('cat', 1.5)\n",
    )
    assert rules_hit(report) == {"units-int-ns"}
    assert "float literal" in report.violations[0].message


def test_int_ns_round_guard_accepted(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        """
        def f(clock, timer, ns):
            clock.advance(round(ns / 2))
            clock.advance(int(ns * 1e9 / 3))
            timer.charge('cat', round(ns * 0.5))
            clock.advance(ns // 2)
        """,
    )
    assert report.violations == []


# -- engine-parity ------------------------------------------------------------
_SCALAR_ENGINE = """
class BlockScheduler:
    def __init__(self, streams, rng, jitter: float = 0.08):
        pass

    def refill(self, read_ok):
        pass

    def has_stalled(self) -> bool:
        return False

    def all_done(self) -> bool:
        return True

    def wake_all_stalled(self) -> int:
        return 0

    def progress(self) -> tuple:
        return ()
"""

_SOA_ENGINE_OK = _SCALAR_ENGINE.replace("BlockScheduler", "SoaBlockScheduler")


def _write_engines(root: Path, soa_source: str) -> LintReport:
    gpu = root / "src/repro/gpu"
    gpu.mkdir(parents=True, exist_ok=True)
    (gpu / "scheduler.py").write_text(_SCALAR_ENGINE, encoding="utf-8")
    (gpu / "soa.py").write_text(soa_source, encoding="utf-8")
    return lint_paths(root, paths=[gpu / "soa.py"])


def test_engine_parity_matching_surfaces(tmp_path):
    report = _write_engines(tmp_path, _SOA_ENGINE_OK)
    assert report.violations == []


def test_engine_parity_signature_drift(tmp_path):
    drifted = _SOA_ENGINE_OK.replace("jitter: float = 0.08", "jitter: float = 0.5")
    report = _write_engines(tmp_path, drifted)
    assert rules_hit(report) == {"engine-parity"}
    assert "signature drift on __init__()" in report.violations[0].message


def test_engine_parity_missing_method(tmp_path):
    gutted = _SOA_ENGINE_OK.replace(
        "    def wake_all_stalled(self) -> int:\n        return 0\n", ""
    )
    report = _write_engines(tmp_path, gutted)
    assert any(
        "wake_all_stalled() missing from the SoA engine" in v.message
        for v in report.violations
    )


def test_engine_parity_missing_scalar_file(tmp_path):
    gpu = tmp_path / "src/repro/gpu"
    gpu.mkdir(parents=True)
    (gpu / "soa.py").write_text(_SOA_ENGINE_OK, encoding="utf-8")
    report = lint_paths(tmp_path, paths=[gpu / "soa.py"])
    assert rules_hit(report) == {"engine-parity"}


# -- generic rules ------------------------------------------------------------
def test_mutable_default_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/ext/thing.py",
        """
        def f(items=[], *, index={}):
            return items, index

        def g(items=None, count=0, name="x"):
            return items
        """,
    )
    assert [v.rule for v in report.violations] == ["mutable-default-arg"] * 2


def test_bare_except_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/serve/thing.py",
        """
        def f():
            try:
                return 1
            except:
                return 2

        def g():
            try:
                return 1
            except Exception:
                return 2
        """,
    )
    assert [v.rule for v in report.violations] == ["bare-except"]


# -- framework ----------------------------------------------------------------
def test_parse_error_reported_not_raised(tmp_path):
    report = lint_snippet(tmp_path, "src/repro/core/broken.py", "def f(:\n")
    assert report.violations == []
    assert len(report.parse_errors) == 1


def test_report_render_and_sorting(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        "import time\nB = 4096\nstart = time.time()\n",
    )
    assert [v.line for v in report.violations] == sorted(
        v.line for v in report.violations
    )
    rendered = report.render()
    assert "2 violation(s) in 1 file(s)" in rendered
    assert "src/repro/core/thing.py:2" in rendered


# -- baseline -----------------------------------------------------------------
def _viol(rule: str, path: str, message: str, line: int = 1) -> Violation:
    return Violation(rule=rule, path=path, line=line, message=message)


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    violations = [
        _viol("r1", "a.py", "m1"),
        _viol("r1", "a.py", "m1", line=9),
        _viol("r2", "b.py", "m2"),
    ]
    counts = save_baseline(path, violations)
    assert counts == {"r1::a.py::m1": 2, "r2::b.py::m2": 1}
    assert load_baseline(path) == counts


def test_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_baseline_version_mismatch_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        f'{{"version": {BASELINE_VERSION + 1}, "violations": {{}}}}',
        encoding="utf-8",
    )
    with pytest.raises(ValueError):
        load_baseline(path)


def test_baseline_diff_new_baselined_stale():
    baseline = {"r1::a.py::m1": 1, "r9::gone.py::old": 2}
    current = [
        _viol("r1", "a.py", "m1"),          # absorbed
        _viol("r1", "a.py", "m1", line=3),  # second occurrence: NEW
        _viol("r2", "b.py", "m2"),          # NEW
    ]
    diff = diff_against_baseline(current, baseline)
    assert len(diff.baselined) == 1
    assert len(diff.new) == 2
    assert diff.stale == {"r9::gone.py::old": 2}
    assert not diff.ok()
    assert not diff.ok(strict=True)


def test_baseline_diff_clean_and_strict():
    baseline = {"r9::gone.py::old": 1}
    diff = diff_against_baseline([], baseline)
    assert diff.ok()
    assert not diff.ok(strict=True)
    assert diff_against_baseline([], {}).ok(strict=True)


# -- the repository itself ----------------------------------------------------
def test_repo_is_lint_clean():
    """`uvmrepro check` must pass on the tree with an empty baseline."""
    report = lint_paths(REPO_ROOT)
    assert report.parse_errors == []
    baseline = load_baseline(REPO_ROOT / "checks_baseline.json")
    assert baseline == {}, "baseline must stay empty; fix or waive new findings"
    diff = diff_against_baseline(report.violations, baseline)
    assert diff.new == [], "\n".join(v.render() for v in diff.new)


def test_repo_engine_parity_holds():
    """The real SoA engine matches the real scalar engine's contract."""
    soa = REPO_ROOT / "src/repro/gpu/soa.py"
    report = lint_paths(REPO_ROOT, paths=[soa])
    assert [v for v in report.violations if v.rule == "engine-parity"] == []


# -- CLI verb -----------------------------------------------------------------
def test_cli_check_clean_on_repo(capsys):
    from repro.cli import main

    assert main(["check", "--root", str(REPO_ROOT), "--strict"]) == 0
    assert "0 new violation(s)" in capsys.readouterr().out


def test_cli_check_list_rules(capsys):
    from repro.cli import main

    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in default_rules():
        assert rule.name in out


def test_cli_check_fails_and_baselines(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "src/repro/core/bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nstart = time.time()\n", encoding="utf-8")

    root = ["check", "--root", str(tmp_path)]
    assert main(root) == 1
    assert "determinism-wallclock" in capsys.readouterr().out

    # grandfather it, then the default check passes but strict notices
    # once the violation is fixed and the entry goes stale
    assert main(root + ["--update-baseline"]) == 0
    capsys.readouterr()
    assert main(root) == 0
    bad.write_text("start = 0\n", encoding="utf-8")
    capsys.readouterr()
    assert main(root) == 0
    assert main(root + ["--strict"]) == 1


# -- waiver extensions: module-level and expiry -------------------------------
def test_file_level_waiver_silences_whole_module(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        """
        # lint: allow-file(determinism-wallclock) replay tooling
        import time

        a = time.time()
        b = time.perf_counter()
        """,
    )
    assert report.violations == []


def test_file_level_waiver_is_rule_specific(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        """
        # lint: allow-file(bare-except)
        import time

        a = time.time()
        """,
    )
    assert rules_hit(report) == {"determinism-wallclock"}


def test_expired_waiver_stops_silencing(tmp_path):
    import datetime

    path = tmp_path / "src/repro/core/thing.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        "import time\n"
        "t = time.time()  # lint: allow(determinism-wallclock, until=2026-06-30)\n",
        encoding="utf-8",
    )
    before = lint_paths(
        tmp_path, paths=[path], today=datetime.date(2026, 6, 30)
    )
    assert before.violations == []
    assert before.expired_waivers == []
    after = lint_paths(
        tmp_path, paths=[path], today=datetime.date(2026, 7, 1)
    )
    assert rules_hit(after) == {"determinism-wallclock"}
    assert len(after.expired_waivers) == 1
    assert "expired 2026-06-30" in after.expired_waivers[0]


def test_malformed_waiver_is_a_parse_error(tmp_path):
    report = lint_snippet(
        tmp_path,
        "src/repro/core/thing.py",
        """
        CAP = 4096  # lint: allow(units-magic-literal, until=not-a-date)
        """,
    )
    assert any("malformed lint waiver" in e for e in report.parse_errors)


def test_waiver_applies_to_flow_violations(tmp_path):
    source = """
    class S:
        def __init__(self, journal):
            self.journal = journal

        def finish(self, record):
            record.state = "done"{marker}
    """
    path = tmp_path / "src/repro/serve/service.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        textwrap.dedent(source.format(marker="")), encoding="utf-8"
    )
    flagged = lint_paths(tmp_path, paths=[path], rules=[], flow=True)
    assert rules_hit(flagged) == {"flow-journal-before-act"}
    path.write_text(
        textwrap.dedent(
            source.format(marker="  # lint: allow(flow-journal-before-act)")
        ),
        encoding="utf-8",
    )
    waived = lint_paths(tmp_path, paths=[path], rules=[], flow=True)
    assert waived.violations == []
