"""Property tests for the module graph / call graph builder."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.checks.graph import ProjectGraph, dotted_chain, module_name_for

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def build_repo_graph() -> ProjectGraph:
    return ProjectGraph.build(REPO_ROOT)


# -- the whole-package property ----------------------------------------------
def test_every_source_file_parses_into_the_graph():
    graph = build_repo_graph()
    assert graph.parse_errors == []
    expected = {
        module_name_for(p.relative_to(REPO_ROOT).as_posix())
        for p in SRC.rglob("*.py")
    }
    assert set(graph.modules) == expected


def test_every_public_function_lands_in_the_graph():
    graph = build_repo_graph()
    for path in SRC.rglob("*.py"):
        relpath = path.relative_to(REPO_ROOT).as_posix()
        module = module_name_for(relpath)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    assert f"{module}.{node.name}" in graph.functions, relpath
            elif isinstance(node, ast.ClassDef):
                assert f"{module}.{node.name}" in graph.classes, relpath
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and not item.name.startswith("_"):
                        qual = f"{module}.{node.name}.{item.name}"
                        assert qual in graph.functions, relpath


def test_call_order_covers_every_function_exactly_once():
    graph = build_repo_graph()
    order = graph.call_order()
    assert sorted(order) == sorted(graph.functions)


def test_known_edges_point_at_known_definitions():
    graph = build_repo_graph()
    for caller, callees in graph.edges.items():
        assert caller in graph.functions
        for callee in callees:
            # constructor edges resolve to __init__ when one exists and
            # stay on the class qualname otherwise.
            assert (
                callee in graph.functions or callee in graph.classes
            ), f"{caller} -> {callee}"


# -- name resolution ----------------------------------------------------------
def write_tree(root: Path, files: dict[str, str]) -> ProjectGraph:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return ProjectGraph.build(root)


def test_module_name_for():
    assert module_name_for("src/repro/serve/cache.py") == "repro.serve.cache"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"


def test_dotted_chain():
    expr = ast.parse("a.b.c", mode="eval").body
    assert dotted_chain(expr) == "a.b.c"
    call = ast.parse("f().x", mode="eval").body
    assert dotted_chain(call) is None


def test_resolves_imported_function_and_class_method(tmp_path):
    graph = write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/util.py": """
                def helper():
                    return 1

                class Box:
                    def open(self):
                        return 2
                """,
            "src/repro/user.py": """
                from repro.util import Box, helper

                def use():
                    helper()
                    return Box()
                """,
        },
    )
    use = graph.functions["repro.user.use"]
    callees = {site.callee for site in use.calls}
    assert "repro.util.helper" in callees
    assert "repro.util.Box" in callees
    # no __init__ on Box, so the edge stays on the class qualname.
    assert graph.callees("repro.user.use") == {
        "repro.util.helper",
        "repro.util.Box",
    }


def test_resolves_relative_imports_and_self_methods(tmp_path):
    graph = write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/a.py": """
                def leaf():
                    return 0
                """,
            "src/repro/pkg/b.py": """
                from .a import leaf

                class Runner:
                    def outer(self):
                        return self.inner() + leaf()

                    def inner(self):
                        return 1
                """,
        },
    )
    outer = "repro.pkg.b.Runner.outer"
    assert graph.callees(outer) == {"repro.pkg.b.Runner.inner", "repro.pkg.a.leaf"}


def test_builtin_calls_resolve_to_builtins_namespace(tmp_path):
    graph = write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                def f(x):
                    return hash(x) + len(str(x))
                """,
        },
    )
    f = graph.functions["repro.m.f"]
    callees = {site.callee for site in f.calls}
    assert {"builtins.hash", "builtins.len", "builtins.str"} <= callees
    assert all(
        not site.known for site in f.calls if site.callee.startswith("builtins.")
    )


def test_transitive_callees(tmp_path):
    graph = write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/m.py": """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 0
                """,
        },
    )
    assert graph.transitive_callees("repro.m.a") == {
        "repro.m.b",
        "repro.m.c",
    }
    assert graph.callers("repro.m.c") == {"repro.m.b"}
