"""SARIF emitter: golden-file byte equality plus structural checks."""

from __future__ import annotations

import json
from pathlib import Path

from repro.checks.flow_rules import default_flow_rules
from repro.checks.linter import LintReport, Violation
from repro.checks.rules import default_rules
from repro.checks.sarif import (
    SARIF_VERSION,
    render_sarif,
    rule_catalog,
    to_sarif,
)

GOLDEN = Path(__file__).resolve().parent / "fixtures" / "sarif_golden.json"


def sample_report() -> LintReport:
    return LintReport(
        violations=[
            Violation(
                rule="flow-determinism-taint",
                path="src/repro/sim/engine.py",
                line=12,
                message="wallclock value reaches rng-seed sink",
            ),
            Violation(
                rule="units-magic-literal",
                path="src/repro/core/config.py",
                line=7,
                message="power-of-two byte-size literal 4096",
            ),
        ],
        files_checked=2,
        parse_errors=[],
        expired_waivers=[
            "src/repro/core/config.py:3: waiver for bare-except expired 2025-01-01"
        ],
    )


def test_sarif_matches_golden_file():
    rendered = render_sarif(
        sample_report(),
        {
            "flow-determinism-taint": "nondeterminism must not reach sinks",
            "units-magic-literal": "use repro.units constants",
        },
        tool_version="1",
    )
    assert rendered == GOLDEN.read_text(encoding="utf-8")


def test_sarif_is_deterministic():
    args = (sample_report(), {"units-magic-literal": "d"}, "1")
    assert render_sarif(*args) == render_sarif(*args)


def test_sarif_structure():
    log = to_sarif(sample_report())
    assert log["version"] == SARIF_VERSION
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "uvmrepro-check"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert len(run["results"]) == 2
    for result, violation in zip(
        run["results"], sorted(sample_report().violations, key=lambda v: v.path)
    ):
        assert result["ruleId"] == violation.rule
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == violation.path
        assert location["region"]["startLine"] == violation.line
    # expired waivers surface as tool notifications.
    notes = run["invocations"][0]["toolExecutionNotifications"]
    assert any("expired 2025-01-01" in n["message"]["text"] for n in notes)


def test_rule_catalog_covers_standard_and_flow_rules():
    catalog = rule_catalog(default_rules(), default_flow_rules())
    assert "units-magic-literal" in catalog
    assert "flow-lock-discipline" in catalog
    assert all(catalog.values()), "every rule needs a description"


def test_sarif_output_is_valid_json_with_sorted_keys():
    rendered = render_sarif(sample_report())
    parsed = json.loads(rendered)
    assert rendered == json.dumps(parsed, indent=2, sort_keys=True) + "\n"
