"""UVMSAN: clean runs, planted bugs, zero-cost-off, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checks import sanitizer as uvmsan
from repro.checks.sanitizer import SanitizerError, UvmSanitizer
from repro.core.driver import UvmDriver
from repro.core.eviction import LruEvictionPolicy
from repro.experiments.runner import ExperimentSetup, simulate
from repro.mem.address_space import AddressSpace
from repro.mem.residency import ResidencyState
from repro.sim.rng import SimRng
from repro.units import MiB, VABLOCK_SIZE
from repro.workloads.registry import make_workload


@pytest.fixture
def san_on():
    uvmsan.set_enabled(True)
    yield
    uvmsan.set_enabled(None)


@pytest.fixture
def san_off():
    uvmsan.set_enabled(False)
    yield
    uvmsan.set_enabled(None)


def build_driver(setup: ExperimentSetup, workload) -> UvmDriver:
    rng = SimRng(setup.seed)
    space = setup.make_space()
    build = workload.build(space, rng.fork("workload"))
    return UvmDriver(
        space=space,
        streams=build.streams if build.phases is None else None,
        phases=build.phases,
        driver_config=setup.driver,
        gpu_config=setup.gpu,
        cost=setup.cost,
        rng=rng,
    )


# -- the switch ---------------------------------------------------------------
def test_env_var_controls_enabled(monkeypatch):
    try:
        monkeypatch.setenv(uvmsan.ENV_VAR, "1")
        uvmsan.set_enabled(None)
        assert uvmsan.enabled()
        monkeypatch.setenv(uvmsan.ENV_VAR, "0")
        uvmsan.set_enabled(None)
        assert not uvmsan.enabled()
        monkeypatch.delenv(uvmsan.ENV_VAR)
        uvmsan.set_enabled(None)
        assert not uvmsan.enabled()
    finally:
        uvmsan.set_enabled(None)  # drop the cache monkeypatch leaves behind


def test_off_means_no_hooks_anywhere(san_off, tiny_setup):
    driver = build_driver(tiny_setup, make_workload("sgemm", 8 * MiB))
    assert driver.sanitizer is None
    assert driver.servicer.sanitizer is None
    assert LruEvictionPolicy()._san_seq is None
    assert uvmsan.make_sanitizer() is None


# -- clean sanitized runs -----------------------------------------------------
def test_clean_oversubscribed_run_passes(san_on, tiny_setup):
    """A real eviction-heavy run satisfies every invariant."""
    driver = build_driver(tiny_setup, make_workload("sgemm", 32 * MiB))
    result = driver.run()
    assert result.evictions > 0, "test must exercise the eviction checks"
    assert driver.sanitizer is not None
    assert driver.sanitizer.checks_run > 0


@pytest.mark.parametrize("name", ["sgemm", "stream", "hpgmg"])
def test_sanitizer_does_not_change_results(name, tiny_setup):
    """UVMSAN observes; it must never perturb the simulation."""
    workload_bytes = 24 * MiB
    uvmsan.set_enabled(False)
    try:
        base = simulate(make_workload(name, workload_bytes), tiny_setup)
    finally:
        uvmsan.set_enabled(None)
    uvmsan.set_enabled(True)
    try:
        checked = simulate(make_workload(name, workload_bytes), tiny_setup)
    finally:
        uvmsan.set_enabled(None)
    assert checked.total_time_ns == base.total_time_ns
    assert checked.faults_serviced == base.faults_serviced
    assert checked.evictions == base.evictions
    assert dict(checked.counters) == dict(base.counters)


# -- planted bugs -------------------------------------------------------------
def _plant_residency_bug(driver: UvmDriver) -> None:
    """After the first serviced bin, mark a non-resident page dirty.

    The corruption is behaviorally inert: eviction and migration always
    mask ``dirty`` with ``resident``, so an unsanitized run completes
    with identical results - exactly the silent-corruption class UVMSAN
    exists to catch.
    """
    original = driver.servicer.service_bin
    state = {"planted": False}

    def corrupting(vbin):
        outcome = original(vbin)
        if not state["planted"]:
            non_resident = np.flatnonzero(~driver.residency.resident)
            if non_resident.size:
                driver.residency.dirty[non_resident[0]] = True
                state["planted"] = True
        return outcome

    driver.servicer.service_bin = corrupting


def test_planted_residency_bug_caught(san_on, tiny_setup):
    driver = build_driver(tiny_setup, make_workload("sgemm", 8 * MiB))
    _plant_residency_bug(driver)
    with pytest.raises(SanitizerError, match="residency"):
        driver.run()


def test_planted_residency_bug_silent_without_sanitizer(san_off, tiny_setup):
    driver = build_driver(tiny_setup, make_workload("sgemm", 8 * MiB))
    _plant_residency_bug(driver)
    driver.run()  # completes: the bug is invisible without UVMSAN


def test_planted_page_table_bug_caught(san_on, tiny_setup):
    driver = build_driver(tiny_setup, make_workload("sgemm", 8 * MiB))
    original = driver.servicer.service_bin
    state = {"planted": False}

    def corrupting(vbin):
        outcome = original(vbin)
        if not state["planted"]:
            mapped = np.flatnonzero(driver.gpu_table.mapped)
            if mapped.size:
                driver.gpu_table.mapped[mapped[0]] = False  # leak a PTE
                state["planted"] = True
        return outcome

    driver.servicer.service_bin = corrupting
    with pytest.raises(SanitizerError, match="page-table"):
        driver.run()


def test_batch_size_violation_caught():
    san = UvmSanitizer()
    san.check_batch([0] * 10, max_size=10)  # at the limit: fine
    with pytest.raises(SanitizerError, match="batch"):
        san.check_batch([0] * 11, max_size=10)


def test_lru_eviction_order_violation_caught(san_on):
    lru = LruEvictionPolicy()
    for vb in (1, 2, 3):
        lru.insert(vb)
    lru.touch(1)
    assert lru.evict_victim() == 2  # clean: 2 is now the oldest fault

    # Reorder the list behind the tracker's back (a touch() that forgot
    # its bookkeeping): the list head is no longer the oldest fault.
    lru._lru.move_to_end(3)
    with pytest.raises(SanitizerError, match="LRU order broken"):
        lru.evict_victim()


def test_lru_tracking_respects_exclusion(san_on):
    lru = LruEvictionPolicy()
    for vb in (1, 2, 3):
        lru.insert(vb)
    assert lru.evict_victim(exclude=(1,)) == 2


# -- direct hook units --------------------------------------------------------
def _residency_pair() -> tuple[AddressSpace, ResidencyState]:
    space = AddressSpace()
    space.malloc_managed(4 * VABLOCK_SIZE, "data")
    return space, ResidencyState(space)


def test_check_eviction_postconditions():
    san = UvmSanitizer()
    space, res = _residency_pair()
    lru = LruEvictionPolicy()
    res.back_vablock(0)
    lru.insert(0)
    res.make_resident(np.arange(4, dtype=np.int64))
    with pytest.raises(SanitizerError, match="still backed"):
        san.check_eviction(res, 0, lru)
    res.evict_vablock(0)
    with pytest.raises(SanitizerError, match="still on LRU"):
        san.check_eviction(res, 0, lru)
    lru.remove(0)
    san.check_eviction(res, 0, lru)  # clean teardown passes


def test_check_prefetch_rejects_resident_and_unbacked():
    san = UvmSanitizer()
    space, res = _residency_pair()
    ppv = space.pages_per_vablock
    with pytest.raises(SanitizerError, match="without physical backing"):
        san.check_prefetch(res, 0, np.array([1], dtype=np.int64))
    res.back_vablock(0)
    res.make_resident(np.array([1], dtype=np.int64))
    with pytest.raises(SanitizerError, match="already-resident"):
        san.check_prefetch(res, 0, np.array([1], dtype=np.int64))
    with pytest.raises(SanitizerError, match="escaped"):
        san.check_prefetch(res, 0, np.array([ppv], dtype=np.int64))
    san.check_prefetch(res, 0, np.array([2, 3], dtype=np.int64))


def test_check_state_flags_lru_membership_drift(san_on):
    san = UvmSanitizer()
    space, res = _residency_pair()
    from repro.mem.page_table import PageTable

    gpu = PageTable(space, side="gpu")
    host = PageTable(space, side="host")
    host.mapped[:] = True
    lru = LruEvictionPolicy()
    san.check_state(res, gpu, host, lru)  # empty state is consistent
    res.back_vablock(1)  # backed but never inserted into the LRU
    with pytest.raises(SanitizerError, match="lru"):
        san.check_state(res, gpu, host, lru)
