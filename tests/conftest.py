"""Shared fixtures: small, fast simulator configurations.

Tests run against deliberately tiny devices (16-64 MiB) so the full
suite stays quick; all paper claims under test are about ratios and
mechanisms, which are scale-invariant in this simulator.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentSetup
from repro.sim.rng import SimRng
from repro.units import MiB


@pytest.fixture
def rng() -> SimRng:
    return SimRng(1234)


@pytest.fixture
def tiny_setup() -> ExperimentSetup:
    """16 MiB GPU: enough for 8 VABlocks; near-instant runs."""
    return ExperimentSetup().with_gpu(memory_bytes=16 * MiB)


@pytest.fixture
def small_setup() -> ExperimentSetup:
    """64 MiB GPU: the oversubscription workhorse."""
    return ExperimentSetup().with_gpu(memory_bytes=64 * MiB)


@pytest.fixture
def no_prefetch_setup(small_setup) -> ExperimentSetup:
    return small_setup.with_driver(prefetch_enabled=False)
