"""Planted-bug fixture tests: every analysis family fires on its broken
fixture tree and stays silent on the fixed twin."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.checks.flow_rules import FAMILIES, default_flow_rules
from repro.checks.linter import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "flow"

# family -> rule names its broken fixture must trigger.
EXPECTED_RULES = {
    "determinism": {"flow-determinism-taint"},
    "concurrency": {"flow-lock-discipline", "flow-fork-capture"},
    "protocol": {"flow-journal-before-act", "flow-hook-sentinel"},
    "units": {"flow-units-mix"},
}


def flow_report(fixture: str, family: str):
    return lint_paths(
        FIXTURES / fixture, rules=[], flow=True, analyses=[family]
    )


@pytest.mark.parametrize("family", sorted(EXPECTED_RULES))
def test_family_fires_on_broken_fixture(family):
    report = flow_report(f"{family}_broken", family)
    assert report.parse_errors == []
    assert {v.rule for v in report.violations} == EXPECTED_RULES[family]


@pytest.mark.parametrize("family", sorted(EXPECTED_RULES))
def test_family_silent_on_fixed_fixture(family):
    report = flow_report(f"{family}_fixed", family)
    assert report.parse_errors == []
    assert report.violations == []


def test_expected_rules_cover_every_family():
    assert set(EXPECTED_RULES) == set(FAMILIES)
    by_family: dict[str, set[str]] = {}
    for rule in default_flow_rules():
        by_family.setdefault(rule.family, set()).add(rule.name)
    assert by_family == EXPECTED_RULES


# -- pinned per-family flows --------------------------------------------------
def test_determinism_catches_interprocedural_seed_flow():
    report = flow_report("determinism_broken", "determinism")
    seeds = [
        v for v in report.violations if "rng-seed" in v.message
    ]
    assert seeds, [v.render() for v in report.violations]
    assert all(v.path == "src/repro/sim/engine.py" for v in seeds)
    assert any("wallclock" in v.message for v in seeds)
    assert any("hashseed" in v.message for v in seeds)


def test_determinism_fixed_twin_uses_sanctioned_sinks():
    # the fixed twin DOES call time.time() - into a *_at timestamp -
    # and time.monotonic() for a deadline; neither may fire.
    source = (
        FIXTURES / "determinism_fixed" / "src" / "repro" / "sim" / "engine.py"
    ).read_text(encoding="utf-8")
    assert "time.time()" in source
    assert "time.monotonic()" in source


def test_lock_discipline_names_the_guarding_lock():
    report = flow_report("concurrency_broken", "concurrency")
    lock_violations = [
        v for v in report.violations if v.rule == "flow-lock-discipline"
    ]
    assert {v.line for v in lock_violations} == {25, 29}
    assert all("self._lock" in v.message for v in lock_violations)


def test_fork_capture_flags_the_spawn_site():
    report = flow_report("concurrency_broken", "concurrency")
    forks = [v for v in report.violations if v.rule == "flow-fork-capture"]
    assert [v.path for v in forks] == ["src/repro/serve/pool.py"]
    assert "lock" in forks[0].message


def test_journal_before_act_flags_only_the_unjournaled_mutation():
    report = flow_report("protocol_broken", "protocol")
    journal = [
        v for v in report.violations if v.rule == "flow-journal-before-act"
    ]
    # finish() mutates without journaling; requeue() journals and is clean.
    assert len(journal) == 1
    assert "finish" in journal[0].message


def test_hook_sentinel_flags_both_unguarded_hooks():
    report = flow_report("protocol_broken", "protocol")
    hooks = [v for v in report.violations if v.rule == "flow-hook-sentinel"]
    chains = {v.message.split("hook ")[1].split(" ")[0] for v in hooks}
    assert chains == {"self.chaos", "self.sanitizer"}


def test_units_mix_reports_the_operator_and_units():
    report = flow_report("units_broken", "units")
    messages = [v.message for v in report.violations]
    assert any("Add" in m and "bytes" in m and "ns" in m for m in messages)
    assert any("Lt" in m for m in messages)
    assert any("pages" in m for m in messages)


# -- family selection ---------------------------------------------------------
def test_analyses_filter_narrows_the_rule_set():
    names = {r.name for r in default_flow_rules(["protocol"])}
    assert names == {"flow-journal-before-act", "flow-hook-sentinel"}


def test_unknown_family_raises():
    with pytest.raises(ValueError, match="unknown analysis"):
        default_flow_rules(["cosmic"])


def test_other_families_stay_silent_on_foreign_fixtures():
    # the units fixture must not trip the determinism analysis, etc.
    report = lint_paths(
        FIXTURES / "units_broken", rules=[], flow=True, analyses=["determinism"]
    )
    assert report.violations == []


def test_full_flow_analysis_of_the_repo_is_clean_and_fast():
    import time

    start = time.monotonic()
    report = lint_paths(REPO_ROOT, rules=[], flow=True)
    elapsed = time.monotonic() - start
    assert report.violations == [], [v.render() for v in report.violations]
    assert elapsed < 10.0, f"flow analysis took {elapsed:.1f}s (budget 10s)"
